"""Batched step-table kernel for the RTA core (ROADMAP item 2).

The legacy analysis advances one window length per Python-level call:
``MemoCurve.__call__`` per curve evaluation, and
``SupplyBoundFunction._extend_to`` per Δ of supply.  Campaigns that
evaluate thousands of nearly identical cells pay that interpreter
overhead on every cell, and a *divergent* cell (busy window that never
closes) pays it for every Δ up to the horizon.

This module compiles every shipped curve class into a canonical
:class:`StepTable` — a breakpoint array ``(windows, counts)`` plus a
tail rate — and rebuilds the three hot paths on top of it:

* curve evaluation is a ``bisect`` over the breakpoint array (or a
  closed-form tail formula), with **no** per-step memo dict;
* the supply bound function is extended **segment-at-a-time**: between
  two consecutive breakpoints of the merged release curves the blackout
  bound is constant, so the slack ``δ − BlackoutBound(δ)`` is linear
  with slope 1 and a whole segment of values is emitted with two
  ``list.extend`` calls instead of one Python iteration per Δ;
* offset enumeration (``_offsets_to_check``) walks the breakpoints
  directly instead of probing every Δ in the busy window.

The kernel is *exact*: compiled tables agree with direct curve
evaluation at every Δ (property-tested in ``tests/test_kernel.py``),
the segment recurrence is algebraically identical to the legacy
``max(previous, δ − blackout(δ), 0)`` recurrence, and the fixed-point
solvers mirror the legacy iteration step for step — so analysis results
and campaign reports are byte-identical with the kernel on or off.  The
legacy path stays available for unhashable ad-hoc curves (automatic
fallback) and as a differential oracle (``--no-kernel``).

See ``docs/rta-kernel.md`` for the representation, the segment
extension, and the equivalence argument.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from heapq import heappop, heappush
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Mapping, NamedTuple, Sequence

from repro import obs
from repro.model.task import Task
from repro.rta.arsa import ArsaResult, blocking_bound
from repro.rta.curves import (
    ArrivalCurve,
    LeakyBucketCurve,
    MemoCurve,
    ShiftedCurve,
    SporadicCurve,
    TableCurve,
)
from repro.timing.wcet import WcetModel


# -- kernel default ---------------------------------------------------------

def _env_default() -> bool:
    return os.environ.get("REPRO_RTA_KERNEL", "").strip().lower() not in {
        "0",
        "off",
        "no",
        "false",
    }


_KERNEL_DEFAULT = _env_default()


def kernel_enabled(choice: bool | None = None) -> bool:
    """Resolve a tri-state kernel choice: ``None`` means the process
    default (on unless ``REPRO_RTA_KERNEL=0``)."""
    if choice is None:
        return _KERNEL_DEFAULT
    return bool(choice)


def set_kernel_default(enabled: bool) -> None:
    """Flip the process default (benchmarks and the CLI escape hatch)."""
    global _KERNEL_DEFAULT
    _KERNEL_DEFAULT = bool(enabled)


# -- the canonical staircase ------------------------------------------------

@dataclass(frozen=True, slots=True)
class StepTable:
    """A monotone staircase as breakpoint arrays plus a periodic tail.

    ``windows`` are the strictly increasing window lengths at which the
    curve jumps, ``counts[k]`` the value from ``windows[k]`` on.  Beyond
    the last breakpoint the staircase continues with one extra unit per
    ``tail_sep``: for ``Δ ≥ windows[-1]``,
    ``value(Δ) = counts[-1] + (Δ − windows[-1]) // tail_sep``.
    An empty head anchors the tail at 0: ``value(Δ) = Δ // tail_sep``.

    Invariants (established by :func:`compile_curve`): windows strictly
    increasing and ≥ 1; counts strictly increasing and ≥ 1;
    ``tail_sep ≥ 1``.  Every jump therefore has a positive increment,
    which :meth:`jump_at` relies on.
    """

    windows: tuple[int, ...]
    counts: tuple[int, ...]
    tail_sep: int

    def value(self, delta: int) -> int:
        """The staircase value at window length ``delta``."""
        if delta <= 0:
            return 0
        windows = self.windows
        if not windows:
            return delta // self.tail_sep
        last = windows[-1]
        if delta >= last:
            return self.counts[-1] + (delta - last) // self.tail_sep
        index = bisect_right(windows, delta)
        return self.counts[index - 1] if index else 0

    def jump_at(self, pos: int) -> tuple[int, int]:
        """The ``pos``-th jump (0-based) as ``(window, increment)``.

        Jumps are returned in strictly increasing window order: first
        the explicit breakpoints, then the periodic tail
        (``windows[-1] + k·tail_sep`` with increment 1).
        """
        windows = self.windows
        head = len(windows)
        if pos < head:
            counts = self.counts
            increment = counts[pos] - (counts[pos - 1] if pos else 0)
            return windows[pos], increment
        anchor = windows[-1] if head else 0
        return anchor + (pos - head + 1) * self.tail_sep, 1


def _shift_table(base: StepTable, shift: int) -> StepTable:
    """The table of ``Δ ↦ base.value(Δ + shift)`` for ``shift ≥ 0``."""
    if shift == 0:
        return base
    value_at_one = base.value(1 + shift)
    windows: list[int] = []
    counts: list[int] = []
    if value_at_one > 0:
        windows.append(1)
        counts.append(value_at_one)
    for window, count in zip(base.windows, base.counts):
        if window - shift > 1:
            windows.append(window - shift)
            counts.append(count)
    sep = base.tail_sep
    anchor = base.windows[-1] if base.windows else 0
    if anchor - shift <= 1:
        # Every explicit breakpoint collapsed into value_at_one; the
        # shifted staircase is pure tail.  Re-anchor at the first tail
        # jump strictly after Δ = 1 — unless Δ = 1 already sits on the
        # tail grid, in which case the tail formula anchored at 1 is
        # phase-exact as-is.
        phase = (1 + shift - anchor) % sep
        if phase != 0:
            windows.append(1 + sep - phase)
            counts.append(value_at_one + 1)
    return StepTable(tuple(windows), tuple(counts), sep)


def _compile(curve: ArrivalCurve) -> StepTable | None:
    if isinstance(curve, MemoCurve):
        return compile_curve(curve.base)
    if isinstance(curve, SporadicCurve):
        return StepTable((1,), (1,), curve.min_separation)
    if isinstance(curve, LeakyBucketCurve):
        return StepTable((1,), (curve.burst,), curve.rate_separation)
    if isinstance(curve, TableCurve):
        windows = tuple(window for window, _ in curve.steps)
        counts = tuple(count for _, count in curve.steps)
        return StepTable(windows, counts, curve.tail_separation)
    if isinstance(curve, ShiftedCurve):
        if curve.shift < 0:
            return None
        base = compile_curve(curve.base)
        if base is None:
            return None
        return _shift_table(base, curve.shift)
    return None


#: Curve descriptor → compiled table (or None for uncompilable kinds).
#: Bounded like the token table: compiled tables are tiny, but ad-hoc
#: sweeps can mint unboundedly many distinct descriptors.
_TABLE_CACHE: dict[ArrivalCurve, StepTable | None] = {}
_TABLE_CACHE_LIMIT = 4096


def compile_curve(curve: ArrivalCurve) -> StepTable | None:
    """Compile ``curve`` to its canonical step table, or ``None`` when
    the curve is not one of the shipped staircase classes (the caller
    falls back to the legacy evaluation path)."""
    try:
        cached = _TABLE_CACHE.get(curve)
    except TypeError:  # unhashable ad-hoc curve
        obs.inc("rta.kernel.table_compile_misses")
        return _compile(curve)
    if cached is None and curve not in _TABLE_CACHE:
        obs.inc("rta.kernel.table_compile_misses")
        cached = _compile(curve)
        if len(_TABLE_CACHE) >= _TABLE_CACHE_LIMIT:
            _TABLE_CACHE.clear()
        _TABLE_CACHE[curve] = cached
    else:
        obs.inc("rta.kernel.table_compile_hits")
    return cached


# -- segment-at-a-time supply -----------------------------------------------

class KernelSupply:
    """The supply bound function over compiled tables.

    Value-identical to :class:`repro.rta.sbf.SupplyBoundFunction` built
    from the same release curves: the blackout bound factors as
    ``P · (Σ_k β_k(δ) + carry·K)`` with ``P`` the per-job overhead sum,
    so between two consecutive breakpoints of the merged tables the
    blackout is constant and the slack ``δ − blackout`` rises with
    slope 1.  :meth:`_extend_to` walks breakpoints (a merge over the
    per-table jump streams) and emits each segment with two
    ``list.extend`` calls: a flat stretch while the running max
    dominates, then an arithmetic ramp.

    The per-table jump positions are plain integers (no generators), so
    instances pickle and can ride through the fork-based campaign pool
    like the legacy SBF.
    """

    def __init__(
        self,
        tables: Sequence[StepTable],
        wcet: WcetModel,
        num_sockets: int,
        carry_in: int = 1,
    ) -> None:
        self._tables = tuple(tables)
        per_job = (
            wcet.read_ovh_bound(num_sockets)
            + wcet.polling_bound(num_sockets)
            + wcet.selection_bound
            + wcet.dispatch_bound
            + wcet.completion_bound
        )
        self._per_job = per_job
        self._base_blackout = per_job * carry_in * len(self._tables)
        self._values: list[int] = [0]  # SBF(0) = 0
        self._sum = 0  # Σ_k β_k at the current frontier
        # Merged jump stream: per-table next-jump index, and the sorted
        # worklist of (next window, table index).
        self._positions = [0] * len(self._tables)
        self._heap = sorted(
            (table.jump_at(0)[0], index)
            for index, table in enumerate(self._tables)
        )

    @property
    def extended_to(self) -> int:
        """The largest ``Δ`` whose value is materialized so far."""
        return len(self._values) - 1

    def _extend_to(self, target: int) -> None:
        values = self._values
        if target <= len(values) - 1:
            return
        heap = self._heap
        tables = self._tables
        positions = self._positions
        per_job = self._per_job
        base = self._base_blackout
        current = values[-1]
        delta = len(values)
        segments = 0
        while delta <= target:
            # Absorb every jump at or before `delta`, so `self._sum` is
            # Σ β_k(δ) for the whole upcoming segment.
            while heap and heap[0][0] <= delta:
                _, index = heappop(heap)
                table = tables[index]
                position = positions[index]
                _, increment = table.jump_at(position)
                self._sum += increment
                positions[index] = position + 1
                heappush(heap, (table.jump_at(position + 1)[0], index))
            segments += 1
            segment_end = min(target, heap[0][0] - 1) if heap else target
            blackout = base + per_job * self._sum
            # Flat stretch: δ − blackout ≤ current  ⇔  δ ≤ current + blackout.
            flat_end = min(segment_end, current + blackout)
            if flat_end >= delta:
                values.extend([current] * (flat_end - delta + 1))
                delta = flat_end + 1
            if delta <= segment_end:
                values.extend(range(delta - blackout, segment_end - blackout + 1))
                current = segment_end - blackout
                delta = segment_end + 1
        if obs.enabled():
            obs.inc("rta.kernel.sbf_segments", segments)

    def __call__(self, delta: int) -> int:
        if delta < 0:
            raise ValueError("window length must be non-negative")
        self._extend_to(delta)
        return self._values[delta]

    def inverse(self, demand: int, ceiling: int) -> int | None:
        """Least ``Δ ≤ ceiling`` with ``SBF(Δ) ≥ demand``; ``None`` if
        the demand is not met within the ceiling."""
        if demand <= 0:
            return 0
        values = self._values
        while values[-1] < demand and len(values) - 1 < ceiling:
            frontier = len(values) - 1
            self._extend_to(min(ceiling, max(2 * frontier, frontier + 1024)))
        hi = min(ceiling, len(values) - 1)
        if values[hi] < demand:
            return None
        return bisect_left(values, demand, 0, hi + 1)


# -- supply pooling ---------------------------------------------------------
#
# Same contract as repro.rta.sbf.shared_sbf: a KernelSupply's values
# depend only on (tables, wcet, sockets, carry-in), so campaign cells of
# the same deployment reuse the instance and every segment already
# materialized.  analyse_batch() opens a batch scope that suspends
# eviction so a sweep wider than the LRU limit still shares supplies
# across all its cells.

_SUPPLY_POOL: OrderedDict[tuple, KernelSupply] = OrderedDict()
_SUPPLY_POOL_LIMIT = 64
_BATCH_DEPTH = 0


class PoolInfo(NamedTuple):
    """Occupancy of a bounded in-process pool."""

    size: int
    limit: int


def supply_pool_info() -> PoolInfo:
    return PoolInfo(len(_SUPPLY_POOL), _SUPPLY_POOL_LIMIT)


def table_cache_info() -> PoolInfo:
    return PoolInfo(len(_TABLE_CACHE), _TABLE_CACHE_LIMIT)


@contextmanager
def batch_scope():
    """Pin pooled supplies for the duration of a batched analysis.

    Inside the scope the supply pool grows without eviction (every cell
    of the batch keeps its warm supply); on exit it is trimmed back to
    the steady-state limit, oldest first.
    """
    global _BATCH_DEPTH
    _BATCH_DEPTH += 1
    try:
        yield
    finally:
        _BATCH_DEPTH -= 1
        if _BATCH_DEPTH == 0:
            while len(_SUPPLY_POOL) > _SUPPLY_POOL_LIMIT:
                _SUPPLY_POOL.popitem(last=False)


def shared_supply(
    tables: Sequence[StepTable],
    wcet: WcetModel,
    num_sockets: int,
    carry_in: int = 1,
) -> KernelSupply:
    """The pooled :class:`KernelSupply` for this deployment fingerprint."""
    key = (tuple(tables), wcet, num_sockets, carry_in)
    cached = _SUPPLY_POOL.get(key)
    if cached is None:
        obs.inc("rta.kernel.supply_pool_misses")
        cached = KernelSupply(tables, wcet, num_sockets, carry_in)
        _SUPPLY_POOL[key] = cached
        if _BATCH_DEPTH == 0 and len(_SUPPLY_POOL) > _SUPPLY_POOL_LIMIT:
            _SUPPLY_POOL.popitem(last=False)
    else:
        obs.inc("rta.kernel.supply_pool_hits")
        _SUPPLY_POOL.move_to_end(key)
    return cached


# -- the fixed-point solver over tables -------------------------------------
#
# Step-for-step mirrors of repro.rta.arsa: the demand expressions, the
# inverse-jump rule, and the convergence tests are identical, so the
# iterates — and with them every field of the ArsaResult, including the
# per-offset detail — are equal to the legacy solver's.

def busy_window_bound(
    task: Task,
    tasks: Sequence[Task],
    tables: Mapping[str, StepTable],
    sbf: KernelSupply,
    horizon: int,
) -> int | None:
    """The least ``L > 0`` closing the busy window, or ``None``."""
    own_and_hep = [
        (tables[t.name], t.wcet) for t in tasks if t.priority >= task.priority
    ]
    blocking = blocking_bound(task, tasks)
    length = 1
    iterations = 0
    try:
        while length <= horizon:
            iterations += 1
            demand = blocking + sum(
                table.value(length) * weight for table, weight in own_and_hep
            )
            if demand <= sbf(length):
                return length
            nxt = sbf.inverse(demand, horizon)
            if nxt is None:
                return None
            length = max(nxt, length + 1)
        return None
    finally:
        obs.inc("rta.kernel.busy_window_iterations", iterations)


def offsets_to_check(table: StepTable, busy_window: int) -> list[int]:
    """Offsets where ``β_i(A+1)`` steps: ``A = window − 1`` for every
    jump window ≤ the busy window.  Walks the breakpoint stream directly
    instead of probing every Δ like the legacy ``_offsets_to_check``."""
    offsets = []
    position = 0
    while True:
        window, _ = table.jump_at(position)
        if window > busy_window:
            return offsets
        offsets.append(window - 1)
        position += 1


def start_time_bound(
    task: Task,
    tasks: Sequence[Task],
    tables: Mapping[str, StepTable],
    sbf: KernelSupply,
    offset: int,
    horizon: int,
) -> int | None:
    """Least ``s`` at which the offset-``A`` job can start."""
    blocking = blocking_bound(task, tasks)
    hep = [
        (tables[t.name], t.wcet)
        for t in tasks
        if t.name != task.name and t.priority >= task.priority
    ]
    prior_own = (tables[task.name].value(offset + 1) - 1) * task.wcet
    s = 0
    iterations = 0
    try:
        while s <= horizon:
            iterations += 1
            demand = (
                blocking
                + prior_own
                + sum(table.value(s + 1) * weight for table, weight in hep)
                + 1
            )
            needed = sbf.inverse(demand, horizon + 1)
            if needed is None:
                return None
            candidate = max(needed - 1, 0)
            if candidate <= s:
                return s if sbf(s + 1) >= demand else None
            s = candidate
        return None
    finally:
        obs.inc("rta.kernel.start_time_iterations", iterations)


def solve_response_time(
    task: Task,
    tasks: Sequence[Task],
    tables: Mapping[str, StepTable],
    sbf: KernelSupply,
    horizon: int = 1_000_000,
) -> ArsaResult | None:
    """The kernel twin of :func:`repro.rta.arsa.solve_response_time`."""
    obs.inc("rta.kernel.tasks_solved")
    window = busy_window_bound(task, tasks, tables, sbf, horizon)
    if window is None:
        return None
    per_offset: list[tuple[int, int, int]] = []
    worst = 0
    for offset in offsets_to_check(tables[task.name], window):
        start = start_time_bound(task, tasks, tables, sbf, offset, horizon)
        if start is None:
            return None
        response = start + task.wcet - offset
        per_offset.append((offset, start, response))
        worst = max(worst, response)
    if not per_offset:
        worst = task.wcet
    return ArsaResult(
        task=task,
        blocking=blocking_bound(task, tasks),
        busy_window=window,
        response_bound=worst,
        offsets=tuple(per_offset),
    )


@dataclass(frozen=True)
class KernelFallback:
    """One recorded kernel→legacy fallback: which task's curve refused
    to compile, and why."""

    task: str
    curve_class: str
    reason: str


#: Recent fallbacks, newest last — obs-independent introspection (the
#: counters only exist while observability is on).  Bounded: campaign
#: sweeps can fall back once per analysed cell.
_FALLBACKS: list[KernelFallback] = []
_FALLBACK_LIMIT = 64


def fallback_info() -> tuple[KernelFallback, ...]:
    """The recent recorded fallbacks (see :class:`KernelFallback`)."""
    return tuple(_FALLBACKS)


def clear_fallback_info() -> None:
    _FALLBACKS.clear()


def fallback_reason(curve: ArrivalCurve) -> str:
    """Why ``curve`` has no step-table compilation, as a stable label.

    Mirrors :func:`_compile`'s refusal paths: a negative shift, or a
    curve class outside the shipped staircase set (ad-hoc callables in
    tests, extension curve types).  Wrappers are looked through so the
    label names the actual culprit.
    """
    if isinstance(curve, MemoCurve):
        return fallback_reason(curve.base)
    if isinstance(curve, ShiftedCurve):
        if curve.shift < 0:
            return "negative-shift"
        return fallback_reason(curve.base)
    return f"unsupported-class:{type(curve).__name__}"


def compile_release_tables(
    tasks: Sequence[Task],
    release_curves: Mapping[str, ArrivalCurve],
) -> dict[str, StepTable] | None:
    """Compile every task's release curve, or ``None`` (legacy fallback)
    when any curve is not a shipped staircase class.

    Each fallback is attributed: the reason lands on a labeled counter
    (``rta.kernel.fallbacks.<reason>`` — one line in the ``repro
    profile`` output) and in :func:`fallback_info`, so "the kernel
    silently fell back" is always answerable with *which curve* and
    *why*.
    """
    tables: dict[str, StepTable] = {}
    for task in tasks:
        curve = release_curves[task.name]
        table = compile_curve(curve)
        if table is None:
            reason = fallback_reason(curve)
            obs.inc("rta.kernel.fallbacks")
            obs.inc(f"rta.kernel.fallbacks.{reason}")
            if len(_FALLBACKS) >= _FALLBACK_LIMIT:
                del _FALLBACKS[0]
            _FALLBACKS.append(KernelFallback(
                task=task.name,
                curve_class=type(curve).__name__,
                reason=reason,
            ))
            return None
        tables[task.name] = table
    return tables


def precompile_release_tables(client, wcet: WcetModel) -> bool:
    """Warm the process-wide table cache for a deployment.

    Campaign pools call this in the parent before forking workers: the
    children inherit the compiled tables and each cell then compiles
    nothing.  Returns whether every curve compiled.
    """
    from repro.rta.curves import release_curve
    from repro.rta.jitter import jitter_bound

    tasks = client.tasks
    if not tasks.has_curves:
        return False
    jitter = jitter_bound(wcet, client.num_sockets).bound
    release_curves = {
        task.name: release_curve(tasks.arrival_curve(task.name), jitter)
        for task in tasks
    }
    return compile_release_tables(tasks.tasks, release_curves) is not None


# -- EDF segment reduction --------------------------------------------------

def edf_candidate_windows(
    tables: Mapping[str, StepTable],
    effective: Mapping[str, int],
    tasks: Sequence[Task],
    busy_bound: int,
) -> list[int]:
    """The window lengths at which the EDF demand-bound check can first
    fail.

    Between candidates, per-task demand ``β_k(Δ − D'_k + 1)·C_k`` and
    the blocking term are constant while SBF is non-decreasing — so if
    the check passes at a segment's first window it passes throughout,
    and the *first* failing window is always a candidate.  Candidates:
    the scan start ``min D'``, every demand jump ``w + D'_k − 1`` for a
    jump window ``w`` of ``β_k``, and every blocking drop ``D'_k``.
    """
    lo = min(effective.values())
    candidates = {lo}
    for task in tasks:
        deadline = effective[task.name]
        if lo <= deadline <= busy_bound:
            candidates.add(deadline)
        table = tables[task.name]
        position = 0
        while True:
            window, _ = table.jump_at(position)
            delta = window + deadline - 1
            if delta > busy_bound:
                break
            if delta >= lo:
                candidates.add(delta)
            position += 1
    return sorted(candidates)

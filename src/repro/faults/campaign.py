"""The detection campaign: inject every planned fault, demand detection.

For each :class:`~repro.faults.plan.FaultSpec` the campaign

1. derives the fault's RNG from the plan (``seed + 1009·index`` — faults
   are independent of each other and of execution order),
2. injects the fault into the layer it targets (mutating baseline
   artifacts, re-running the simulator with a perturbation, running a
   misbehaving scheduler model, wrapping an engine, or arming a worker
   fault in the process pool), and
3. runs the *regular* checker battery over whatever artifacts the fault
   produced — the same ``tr_prot`` / ``tr_valid`` / WCET / consistency /
   compliance / monitor / model-check code paths that bless healthy
   runs.

A fault counts as **detected** when the checker its taxonomy entry
names (:attr:`~repro.faults.plan.FaultKind.expected_checker`) flags it;
other checkers flagging too is fine.  The campaign also re-checks the
unfaulted baseline (``baseline_clean``) so a trigger-happy checker
cannot fake a perfect detection rate.

Everything in the report is a deterministic function of the plan and
the client: no wall clock, no pids, sorted JSON keys — running the same
plan twice produces byte-identical reports.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro import obs
from repro.engine import create_engine
from repro.faults import inject
from repro.faults.corpus import baseline_workload
from repro.faults.plan import FaultPlan, FaultSpec, PlanError
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.env import QueueEnvironment
from repro.rossl.runtime import TeeSink, TraceRecorder
from repro.rta.compliance import ComplianceError, check_jitter_compliance
from repro.rta.jitter import jitter_bound
from repro.schedule.conversion import ConversionError, convert
from repro.sim.simulator import SimulationResult, UniformDurations, simulate
from repro.timing.arrivals import ArrivalSequence
from repro.timing.timed_trace import ConsistencyError, TimedTrace, check_consistency
from repro.timing.wcet import WcetError, WcetModel, check_wcet_respected
from repro.traces.markers import Trace
from repro.traces.protocol import ProtocolError
from repro.traces.validity import TraceValidityError, check_tr_valid
from repro.verification.model_check import explore_with_engine
from repro.verification.monitor import OnlineMonitor


@dataclass
class _Artifacts:
    """What one (possibly faulted) run left behind for the checkers.

    ``None`` fields mean the fault did not produce that artifact, and
    the checkers needing it are skipped (e.g. a pure trace mutation has
    no timestamps for the WCET checker to look at).
    """

    trace: list | None = None
    timed: TimedTrace | None = None
    arrivals: ArrivalSequence | None = None


def _run_checkers(
    client: RosslClient, wcet: WcetModel, artifacts: _Artifacts
) -> dict[str, str]:
    """The battery: every applicable checker, each recording why it
    flagged (checker name → first error message)."""
    flagged: dict[str, str] = {}
    trace: Trace | None = artifacts.trace
    if trace is None and artifacts.timed is not None:
        trace = artifacts.timed.trace
    if trace is not None:
        try:
            client.protocol().check(trace)
        except ProtocolError as exc:
            flagged["traces.protocol"] = str(exc)
        try:
            check_tr_valid(trace, client.priority_fn())
        except TraceValidityError as exc:
            flagged["traces.validity"] = str(exc)
    if artifacts.timed is not None:
        try:
            check_wcet_respected(artifacts.timed, client.tasks, wcet)
        except WcetError as exc:
            flagged["timing.wcet"] = str(exc)
        if artifacts.arrivals is not None:
            try:
                check_consistency(artifacts.timed, artifacts.arrivals)
            except ConsistencyError as exc:
                flagged["timing.consistency"] = str(exc)
            # Compliance needs a schedule, which needs a protocol-clean
            # trace; strict=False keeps it reporting *its* property even
            # when consistency is already known to be broken.
            if "traces.protocol" not in flagged:
                bound = jitter_bound(wcet, client.num_sockets).bound
                try:
                    schedule = convert(artifacts.timed, client.sockets)
                    check_jitter_compliance(
                        artifacts.timed,
                        artifacts.arrivals,
                        schedule,
                        client.priority_fn(),
                        bound,
                        strict=False,
                    )
                except ConversionError:
                    pass
                except ComplianceError as exc:
                    flagged["rta.compliance"] = str(exc)
    return flagged


# -- per-layer injection drivers --------------------------------------------

_TRACE_MUTATORS = {
    "drop_marker": inject.drop_marker,
    "duplicate_marker": inject.duplicate_marker,
    "reorder_markers": inject.reorder_markers,
    "corrupt_marker": inject.corrupt_marker,
    "duplicate_job_id": inject.duplicate_job_id,
    "phantom_idle": inject.phantom_idle,
}


def _extreme_priority_messages(client: RosslClient) -> tuple[tuple, tuple]:
    tasks = sorted(client.tasks, key=lambda t: t.priority)
    if tasks[0].priority == tasks[-1].priority:
        raise inject.InjectionError(
            "priority inversion needs two tasks with distinct priorities"
        )
    return (tasks[0].type_tag, 0), (tasks[-1].type_tag, 0)


def _run_live_model(client: RosslClient, model, messages) -> dict[str, str]:
    """Run a misbehaving scheduler model against the online monitor.

    The recorder is tee'd *before* the monitor so the offending marker
    is part of the record when the monitor fails fast.
    """
    env = QueueEnvironment(client.sockets)
    for sock, data in messages:
        env.inject(sock, data)
    recorder = TraceRecorder()
    monitor = OnlineMonitor(client.sockets, client.priority_fn())
    try:
        model.run(env, TeeSink(recorder, monitor), max_iterations=4)
    except (ProtocolError, TraceValidityError) as exc:
        return {"verification.monitor": str(exc)}
    return {}


def _run_faulty_engine(client: RosslClient, wrap) -> dict[str, str]:
    """Model-check a fault-wrapped engine through the standard bounded
    exploration; any violation is a detection.

    Depth matters: after a successful read the polling loop needs a
    full all-fail pass before it reaches selection and touches the
    (possibly corrupted) queue, so the scripts must span two passes
    plus slack — ``2 · num_sockets + 2`` read outcomes.  One payload
    suffices (faults here do not depend on the task mix) and keeps the
    exploration to ``2^depth`` scripts.
    """
    engine = wrap(create_engine("interp", client))
    payloads = [(next(iter(client.tasks)).type_tag, 0)]
    report = explore_with_engine(
        client, payloads, max_reads=2 * client.num_sockets + 2, engine=engine
    )
    if report.violations:
        first = report.violations[0]
        return {
            "verification.model_check": f"[{first.kind}] {first.detail}"
        }
    return {}


def _pool_probe_client() -> tuple[RosslClient, WcetModel]:
    """A small fixed deployment for the worker-fault probes.

    Worker faults test the *runner*, not the client's task system, so
    the probe is independent of the spec under campaign — it needs
    arrival curves and schedulability, which arbitrary clients may lack.
    """
    from repro.rta.curves import SporadicCurve

    tasks = TaskSystem(
        [
            Task(name="slow", priority=1, wcet=20, type_tag=1),
            Task(name="fast", priority=2, wcet=5, type_tag=2),
        ],
        {"slow": SporadicCurve(400), "fast": SporadicCurve(150)},
    )
    wcet = WcetModel(
        failed_read=2, success_read=2, selection=1, dispatch=1,
        completion=1, idling=1,
    )
    return RosslClient.make(tasks, [0]), wcet


#: Per-chunk timeout for the worker-hang probe: generous against a slow
#: machine (healthy probe chunks finish in milliseconds) but the only
#: wall-clock cost of detecting the hang.
HANG_PROBE_TIMEOUT = 5.0


def _run_worker_fault(kind: str, spec: FaultSpec, seed: int) -> dict[str, str]:
    from repro.analysis.parallel import WorkerFault, fork_available
    from repro.analysis.adequacy import run_adequacy_campaign

    if not fork_available():
        return {}
    probe_client, probe_wcet = _pool_probe_client()
    # A crash probe must be *persistent* (fire on every attempt): the
    # pool machinery deliberately absorbs transient crashes — chunks that
    # never ran when a pool-mate died get a free retry, and a crasher
    # gets one quarantined solo attempt — so only a deterministic crasher
    # exhausts the budget and degrades the report.  A hang keeps its
    # parameterized count: every timeout is charged, absorbed or not.
    times = max(1, spec.param) if kind == "hang" else max(99, spec.param)
    fault = WorkerFault(kind=kind, chunk_index=spec.site, times=times)
    report = run_adequacy_campaign(
        probe_client,
        probe_wcet,
        horizon=2000,
        runs=8,
        seed=seed,
        jobs=2,
        worker_retries=0,
        worker_timeout=HANG_PROBE_TIMEOUT if kind == "hang" else None,
        worker_fault=fault,
    )
    if report.degraded:
        # Only the stable fact goes into the report: *which* shards a
        # crash takes down depends on pool scheduling, but that the
        # campaign degraded (and completed) does not.
        return {
            "analysis.parallel": (
                "campaign completed degraded: shard failures recorded, "
                "surviving runs merged"
            )
        }
    return {}


def _flags_for_fault(
    spec: FaultSpec,
    index: int,
    plan: FaultPlan,
    client: RosslClient,
    wcet: WcetModel,
    horizon: int,
    baseline: SimulationResult,
) -> dict[str, str]:
    rng = random.Random(plan.fault_seed(index))
    kind = spec.kind
    if kind in _TRACE_MUTATORS:
        mutated = _TRACE_MUTATORS[kind](
            list(baseline.timed_trace.trace), rng, spec.site
        )
        return _run_checkers(client, wcet, _Artifacts(trace=mutated))
    if kind == "wcet_overrun":
        timed = inject.wcet_overrun(
            baseline.timed_trace, client, wcet, rng, spec.site
        )
        return _run_checkers(
            client, wcet, _Artifacts(timed=timed, arrivals=baseline.arrivals)
        )
    if kind == "clock_skew":
        skew = spec.param if spec.param else horizon
        skewed = inject.skew_arrivals(baseline.arrivals, skew)
        return _run_checkers(
            client, wcet,
            _Artifacts(timed=baseline.timed_trace, arrivals=skewed),
        )
    if kind == "jitter_spike":
        bound = jitter_bound(wcet, client.num_sockets).bound
        blackout = spec.param if spec.param else 4 * bound + 2
        driver = inject.simulate_with_gate(
            client,
            baseline.arrivals,
            wcet,
            horizon,
            UniformDurations(rng),
            inject.delivery_blackout(blackout),
        )
        return _run_checkers(
            client, wcet,
            _Artifacts(timed=driver.timed_trace(), arrivals=baseline.arrivals),
        )
    if kind == "priority_inversion":
        lo, hi = _extreme_priority_messages(client)
        model = inject.PriorityInversionModel(client.sockets, client.tasks)
        sock = client.sockets[0]
        return _run_live_model(client, model, [(sock, lo), (sock, hi)])
    if kind == "skipped_wakeup":
        if client.num_sockets < 2:
            raise inject.InjectionError(
                "the wait-set bug needs at least two registered sockets"
            )
        model = inject.SkippedWakeupModel(client.sockets, client.tasks)
        message = (next(iter(client.tasks)).type_tag, 0)
        return _run_live_model(
            client, model, [(client.sockets[1], message)]
        )
    if kind == "heap_corruption":
        return _run_faulty_engine(client, inject.heap_corruption_engine)
    if kind == "trace_state_desync":
        return _run_faulty_engine(client, inject.trace_desync_engine)
    if kind in ("worker_crash", "worker_hang"):
        return _run_worker_fault(
            kind.removeprefix("worker_"), spec, plan.fault_seed(index)
        )
    raise PlanError(f"no injector for fault kind {kind!r}")  # pragma: no cover


# -- outcomes and the report ------------------------------------------------


@dataclass(frozen=True)
class FaultOutcome:
    """One injected fault and what the checker battery made of it."""

    index: int
    kind: str
    layer: str
    expected: str
    detected: bool
    #: every checker that flagged, with its message, sorted by name.
    flagged: tuple[tuple[str, str], ...]
    #: the headline: the expected checker's message, or why detection
    #: failed.
    detail: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "layer": self.layer,
            "expected": self.expected,
            "detected": self.detected,
            "flagged": [
                {"checker": name, "message": message}
                for name, message in self.flagged
            ],
            "detail": self.detail,
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultOutcome":
        return FaultOutcome(
            index=data["index"],
            kind=data["kind"],
            layer=data["layer"],
            expected=data["expected"],
            detected=data["detected"],
            flagged=tuple(
                (entry["checker"], entry["message"])
                for entry in data["flagged"]
            ),
            detail=data["detail"],
        )


@dataclass(frozen=True)
class FaultCampaignReport:
    """The detection-rate report — the campaign's first-class artifact."""

    seed: int
    horizon: int
    baseline_clean: bool
    outcomes: tuple[FaultOutcome, ...] = field(default=())

    @property
    def injected(self) -> int:
        return len(self.outcomes)

    @property
    def detected(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    @property
    def detection_rate(self) -> float:
        """Detected / injected (1.0 for the empty campaign)."""
        if not self.outcomes:
            return 1.0
        return self.detected / self.injected

    @property
    def ok(self) -> bool:
        """100% detection on a clean baseline — the acceptance bar."""
        return self.baseline_clean and self.detected == self.injected

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "baseline_clean": self.baseline_clean,
            "injected": self.injected,
            "detected": self.detected,
            "detection_rate": self.detection_rate,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_dict(data: dict) -> "FaultCampaignReport":
        return FaultCampaignReport(
            seed=data["seed"],
            horizon=data["horizon"],
            baseline_clean=data["baseline_clean"],
            outcomes=tuple(
                FaultOutcome.from_dict(entry) for entry in data["outcomes"]
            ),
        )

    @staticmethod
    def from_json(text: str) -> "FaultCampaignReport":
        return FaultCampaignReport.from_dict(json.loads(text))

    def table(self) -> str:
        rate = f"{100.0 * self.detection_rate:.1f}%"
        lines = [
            f"Fault-injection campaign (seed {self.seed}): "
            f"{self.detected}/{self.injected} detected ({rate})",
            "baseline: " + ("clean" if self.baseline_clean else "NOT CLEAN"),
        ]
        width_kind = max((len(o.kind) for o in self.outcomes), default=0)
        width_exp = max((len(o.expected) for o in self.outcomes), default=0)
        for o in self.outcomes:
            status = "  ok" if o.detected else "MISS"
            lines.append(
                f"  [{status}] {o.kind:<{width_kind}}  "
                f"{o.expected:<{width_exp}}  {o.detail}"
            )
        return "\n".join(lines)


def run_fault_campaign(
    plan: FaultPlan,
    client: RosslClient,
    wcet: WcetModel,
    horizon: int = 20_000,
) -> FaultCampaignReport:
    """Inject every fault in ``plan`` and run the checker battery.

    Deterministic in ``(plan, client, wcet, horizon)``: reports are
    byte-identical across runs of the same inputs.
    """
    with obs.span("faults.campaign", faults=len(plan.faults), seed=plan.seed):
        arrivals = baseline_workload(client, horizon)
        baseline = simulate(
            client,
            arrivals,
            wcet,
            horizon,
            durations=UniformDurations(random.Random(plan.seed)),
            engine="python",
        )
        baseline_flags = _run_checkers(
            client, wcet,
            _Artifacts(timed=baseline.timed_trace, arrivals=arrivals),
        )
        outcomes = []
        for index, spec in enumerate(plan.faults):
            meta = spec.meta
            try:
                flags = _flags_for_fault(
                    spec, index, plan, client, wcet, horizon, baseline
                )
            except inject.InjectionError as exc:
                flags = {}
                detail = f"injection failed: {exc}"
            else:
                if meta.expected_checker in flags:
                    detail = flags[meta.expected_checker]
                elif flags:
                    others = ", ".join(sorted(flags))
                    detail = (
                        f"expected {meta.expected_checker}, "
                        f"only {others} flagged"
                    )
                else:
                    detail = f"no checker flagged ({meta.description})"
            detected = meta.expected_checker in flags
            obs.inc("faults.injected")
            obs.inc("faults.detected" if detected else "faults.undetected")
            outcomes.append(
                FaultOutcome(
                    index=index,
                    kind=spec.kind,
                    layer=meta.layer,
                    expected=meta.expected_checker,
                    detected=detected,
                    flagged=tuple(sorted(flags.items())),
                    detail=detail,
                )
            )
    return FaultCampaignReport(
        seed=plan.seed,
        horizon=horizon,
        baseline_clean=not baseline_flags,
        outcomes=tuple(outcomes),
    )

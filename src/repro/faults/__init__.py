"""Deterministic fault injection: adversarial validation of the checkers.

The verification layers (protocol, validity, WCET, consistency,
compliance, the online monitor, the bounded model checker) exist to
*reject* bad executions — but a test suite that only ever feeds them
well-formed traces cannot tell a working checker from a vacuous one.
This package injects seeded faults at every layer the paper's argument
crosses and asserts that the checker responsible for that layer flags
the fault:

* **trace mutation** (markers dropped / duplicated / reordered /
  corrupted, duplicated job ids, phantom idles) — caught by ``tr_prot``
  / ``tr_valid``;
* **timing perturbation** (WCET overruns, clock skew, jitter spikes) —
  caught by the WCET / consistency / compliance checkers;
* **scheduler misbehavior** (priority inversion, the E16 skipped
  wait-set wakeup) — caught live by the online monitor;
* **engine-level corruption** (heap poisoning, trace-state desync) —
  caught by the bounded model checker as stuck/invalid executions;
* **infrastructure failure** (worker crash / hang) — absorbed by the
  hardened parallel runner as recorded shard failures.

Everything is deterministic: a :class:`~repro.faults.plan.FaultPlan`
fixes the fault list and the RNG seed, no wall clock enters any report,
and running the same plan twice produces byte-identical output.
"""

from repro.faults.campaign import (
    FaultCampaignReport,
    FaultOutcome,
    run_fault_campaign,
)
from repro.faults.corpus import baseline_workload, curated_plan
from repro.faults.plan import (
    FAULT_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    PlanError,
)

__all__ = [
    "FAULT_KINDS",
    "FaultCampaignReport",
    "FaultKind",
    "FaultOutcome",
    "FaultPlan",
    "FaultSpec",
    "PlanError",
    "baseline_workload",
    "curated_plan",
    "run_fault_campaign",
]

"""Fault plans: which fault, where, and under which seed.

A :class:`FaultPlan` is the complete, serializable description of one
injection campaign: a root seed plus an ordered list of
:class:`FaultSpec` entries.  Every piece of randomness in the campaign
derives from ``seed`` and the fault's position in the list, so a plan
is a *reproducer* — the JSON file alone replays the exact faults.

Plan file format (``PLAN.json``)::

    {
      "seed": 7,
      "faults": [
        {"kind": "drop_marker"},
        {"kind": "wcet_overrun", "site": 3},
        {"kind": "worker_crash", "param": 2}
      ]
    }

``site`` locates the fault (a marker/read/chunk index, interpreted per
kind; 0 lets the seeded RNG choose) and ``param`` is a kind-specific
knob (e.g. how many pool rounds a worker fault fires for).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


class PlanError(Exception):
    """A fault plan is malformed or names an unknown fault kind."""


@dataclass(frozen=True)
class FaultKind:
    """One entry of the fault taxonomy.

    ``layer`` names the subsystem the fault is injected into;
    ``expected_checker`` names the checker that must flag it (the
    campaign's detection criterion — other checkers may also flag,
    which is fine, but *this* one has to).
    """

    name: str
    layer: str
    expected_checker: str
    description: str


#: The fault taxonomy.  Keep docs/faults.md's table in sync.
FAULT_KINDS: dict[str, FaultKind] = {
    kind.name: kind
    for kind in (
        FaultKind(
            "drop_marker", "traces", "traces.protocol",
            "delete one interior marker from the trace",
        ),
        FaultKind(
            "duplicate_marker", "traces", "traces.protocol",
            "emit one marker twice in a row",
        ),
        FaultKind(
            "reorder_markers", "traces", "traces.protocol",
            "swap two adjacent markers",
        ),
        FaultKind(
            "corrupt_marker", "traces", "traces.protocol",
            "replace one marker with a marker of a different type",
        ),
        FaultKind(
            "duplicate_job_id", "traces", "traces.validity",
            "rewrite a successful read to reuse an earlier job id",
        ),
        FaultKind(
            "phantom_idle", "traces", "traces.validity",
            "replace a dispatch/execution/completion triple with idling "
            "while jobs are pending",
        ),
        FaultKind(
            "wcet_overrun", "timing", "timing.wcet",
            "stretch one basic action past its WCET",
        ),
        FaultKind(
            "clock_skew", "timing", "timing.consistency",
            "skew all arrivals past the trace, so reads consume "
            "messages that have not arrived",
        ),
        FaultKind(
            "jitter_spike", "sim", "rta.compliance",
            "suppress message delivery for a window longer than the "
            "jitter bound J",
        ),
        FaultKind(
            "priority_inversion", "rossl", "verification.monitor",
            "scheduler dequeues the lowest-priority pending job",
        ),
        FaultKind(
            "skipped_wakeup", "rossl", "verification.monitor",
            "scheduler polls only the first socket (the E16 wait-set "
            "construction bug)",
        ),
        FaultKind(
            "heap_corruption", "lang", "verification.model_check",
            "poison the engine heap after the first successful read",
        ),
        FaultKind(
            "trace_state_desync", "lang", "verification.model_check",
            "desynchronize emitted job ids from the engine's trace state",
        ),
        FaultKind(
            "worker_crash", "analysis.parallel", "analysis.parallel",
            "a campaign worker process dies abruptly mid-shard",
        ),
        FaultKind(
            "worker_hang", "analysis.parallel", "analysis.parallel",
            "a campaign worker process hangs past the shard timeout",
        ),
    )
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: its kind plus kind-specific locators."""

    kind: str
    site: int = 0
    param: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(sorted(FAULT_KINDS))
            raise PlanError(f"unknown fault kind {self.kind!r} (known: {known})")
        if self.site < 0 or self.param < 0:
            raise PlanError(f"site/param must be non-negative in {self}")

    @property
    def meta(self) -> FaultKind:
        return FAULT_KINDS[self.kind]


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered fault list — one campaign, fully pinned."""

    seed: int = 0
    faults: tuple[FaultSpec, ...] = field(default=())

    def fault_seed(self, index: int) -> int:
        """The RNG seed of fault ``index`` — a function of the plan seed
        and the position only, so faults are independent of each other
        and of execution order."""
        return self.seed + 1009 * index

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [
                {"kind": f.kind, "site": f.site, "param": f.param}
                for f in self.faults
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_dict(data: object) -> "FaultPlan":
        if not isinstance(data, dict):
            raise PlanError(f"a fault plan must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise PlanError(f"unknown plan keys: {sorted(unknown)}")
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise PlanError(f"plan seed must be an integer, got {seed!r}")
        raw_faults = data.get("faults", [])
        if not isinstance(raw_faults, list):
            raise PlanError("plan 'faults' must be a list")
        faults = []
        for position, entry in enumerate(raw_faults):
            if not isinstance(entry, dict) or "kind" not in entry:
                raise PlanError(
                    f"fault #{position} must be an object with a 'kind' key"
                )
            extra = set(entry) - {"kind", "site", "param"}
            if extra:
                raise PlanError(f"fault #{position}: unknown keys {sorted(extra)}")
            for int_key in ("site", "param"):
                value = entry.get(int_key, 0)
                if not isinstance(value, int) or isinstance(value, bool):
                    raise PlanError(
                        f"fault #{position}: {int_key} must be an integer"
                    )
            faults.append(
                FaultSpec(
                    kind=entry["kind"],
                    site=entry.get("site", 0),
                    param=entry.get("param", 0),
                )
            )
        return FaultPlan(seed=seed, faults=tuple(faults))

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanError(f"plan is not valid JSON: {exc}") from exc
        return FaultPlan.from_dict(data)

    @staticmethod
    def load(path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return FaultPlan.from_json(handle.read())
        except OSError as exc:
            raise PlanError(f"cannot read plan {path}: {exc}") from exc

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

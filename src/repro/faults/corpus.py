"""The curated corpus: the baseline workload and the all-kinds plan.

The campaign needs a workload that exercises every injection surface:
multiple rounds of arrivals (so traces have several dispatch triples
and ≥ 2 successful reads), arrivals spread across all sockets (so the
wait-set bug is observable), and arrivals early in the run (so a
delivery blackout visibly delays a read).  ``baseline_workload`` builds
that deterministically from the client alone — no RNG, no wall clock.

``curated_plan`` is the CI corpus: one fault of every kind in the
taxonomy, under a caller-chosen seed.  The acceptance bar is 100%
detection on this plan.
"""

from __future__ import annotations

from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.rossl.client import RosslClient
from repro.timing.arrivals import Arrival, ArrivalSequence

#: Arrival rounds in the baseline workload.
ROUNDS = 3
#: Time between two rounds.
ROUND_SPACING = 101
#: Time between two tasks' arrivals within a round.
TASK_SPACING = 7


def baseline_workload(client: RosslClient, horizon: int = 20_000) -> ArrivalSequence:
    """A deterministic workload covering every injection surface.

    Each round sends one message per task; sockets rotate round-by-round
    so every socket carries traffic.  All arrivals land in the first few
    hundred time units — far inside any reasonable horizon — so the
    trace completes every job and contains multiple polling passes,
    successful reads, and dispatch triples.
    """
    nsocks = len(client.sockets)
    arrivals = []
    serial = 0
    for round_index in range(ROUNDS):
        base = 1 + ROUND_SPACING * round_index
        for task_index, task in enumerate(client.tasks):
            sock = client.sockets[(task_index + round_index) % nsocks]
            time = base + TASK_SPACING * task_index
            if time >= horizon:
                break
            arrivals.append(Arrival(time, sock, (task.type_tag, serial)))
            serial += 1
    return ArrivalSequence(arrivals)


def curated_plan(seed: int = 0) -> FaultPlan:
    """One fault of every kind in the taxonomy, in taxonomy order."""
    return FaultPlan(
        seed=seed,
        faults=tuple(FaultSpec(kind=name) for name in FAULT_KINDS),
    )

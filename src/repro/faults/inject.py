"""The injectors: one deterministic mutation per fault kind.

Trace mutators are pure functions ``(trace, rng, site) → trace`` — they
never modify their input.  Timing mutators act on the ``(tr, ts)`` pair
or on the arrival sequence.  Scheduler misbehavior is injected as
:class:`~repro.rossl.runtime.RosslModel` subclasses that reproduce real
bug classes (priority inversion; the E16 wait-set construction bug).
Engine-level faults wrap a registry engine so the *same* model-checking
code path that blesses the healthy engine is what has to reject the
corrupted one.

Why each fault is guaranteed detectable is argued at the injection
site; the short version is that the Fig. 5 protocol automaton expects
exactly one marker type in every state (two in the post-selection
state), and adjacent markers never share a type — so dropping,
duplicating, swapping, or retyping a marker always confronts the
automaton with a type it does not accept.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.engine import SchedulerEngine
from repro.model.job import Job
from repro.rossl.client import RosslClient
from repro.rossl.env import Environment
from repro.rossl.runtime import MarkerSink, RosslModel
from repro.sim.simulator import DurationPolicy, TimedDriver
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import TimedTrace
from repro.timing.wcet import WcetModel
from repro.traces.markers import (
    Marker,
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
    Trace,
)


class InjectionError(Exception):
    """The fault cannot be applied to this trace/client (e.g. the trace
    has no successful read to duplicate).  Campaigns surface this as an
    undetected fault with the reason — never silently skip."""


def _pick(rng: random.Random, site: int, limit: int) -> int:
    """Deterministic site selection: an explicit non-zero ``site`` wins
    (mod ``limit``), otherwise the fault's own RNG chooses."""
    if limit <= 0:
        raise InjectionError("no eligible injection site")
    if site:
        return site % limit
    return rng.randrange(limit)


# -- trace mutation ---------------------------------------------------------


def drop_marker(trace: Trace, rng: random.Random, site: int = 0) -> list[Marker]:
    """Delete one *interior* marker.

    Dropping the final marker would leave a shorter but still valid
    prefix (finite traces are always prefixes of the infinite run), so
    only indices ``[0, len-2]`` are eligible — and for those, the
    successor marker is never of the type the automaton now expects.
    """
    if len(trace) < 2:
        raise InjectionError("trace too short to drop an interior marker")
    index = _pick(rng, site, len(trace) - 1)
    return [m for i, m in enumerate(trace) if i != index]


def duplicate_marker(trace: Trace, rng: random.Random, site: int = 0) -> list[Marker]:
    """Emit one marker twice.  No protocol state accepts two markers of
    the same type in a row, so any index is detectable."""
    if not trace:
        raise InjectionError("empty trace")
    index = _pick(rng, site, len(trace))
    mutated = list(trace)
    mutated.insert(index, trace[index])
    return mutated


def reorder_markers(trace: Trace, rng: random.Random, site: int = 0) -> list[Marker]:
    """Swap two adjacent markers.  Adjacent markers always differ in
    type, so the swapped-forward marker is never accepted."""
    if len(trace) < 2:
        raise InjectionError("trace too short to reorder")
    index = _pick(rng, site, len(trace) - 1)
    mutated = list(trace)
    mutated[index], mutated[index + 1] = mutated[index + 1], mutated[index]
    return mutated


def corrupt_marker(trace: Trace, rng: random.Random, site: int = 0) -> list[Marker]:
    """Replace one marker with a marker of a different type
    (``M_Selection``, or ``M_Idling`` when the victim *is* a selection).
    Every protocol state expects a specific other type at that point."""
    if not trace:
        raise InjectionError("empty trace")
    index = _pick(rng, site, len(trace))
    replacement: Marker = (
        MIdling() if isinstance(trace[index], MSelection) else MSelection()
    )
    mutated = list(trace)
    mutated[index] = replacement
    return mutated


def duplicate_job_id(trace: Trace, rng: random.Random, site: int = 0) -> list[Marker]:
    """Rewrite a later successful read to carry an earlier read's job.

    The socket stays as observed (so the protocol remains satisfied);
    only the job id repeats — precisely the unique-ids clause of
    Def. 3.2, which ``tr_valid`` must reject.
    """
    successes = [
        i for i, m in enumerate(trace) if isinstance(m, MReadE) and m.job is not None
    ]
    if len(successes) < 2:
        raise InjectionError("need at least two successful reads to duplicate an id")
    which = 1 + _pick(rng, site, len(successes) - 1)
    victim_index = successes[which]
    earlier = trace[successes[which - 1]]
    victim = trace[victim_index]
    assert isinstance(victim, MReadE) and isinstance(earlier, MReadE)
    mutated = list(trace)
    mutated[victim_index] = MReadE(victim.sock, earlier.job)
    return mutated


def phantom_idle(trace: Trace, rng: random.Random, site: int = 0) -> list[Marker]:
    """Replace a dispatch/execution/completion triple with ``M_Idling``.

    The protocol accepts this (post-selection, idling is enabled), but
    the dispatched job was pending — the idle-implies-empty clause of
    Def. 3.2 is violated, and only ``tr_valid`` can see it.
    """
    triples = [
        i
        for i in range(len(trace) - 2)
        if isinstance(trace[i], MDispatch)
        and isinstance(trace[i + 1], MExecution)
        and isinstance(trace[i + 2], MCompletion)
    ]
    if not triples:
        raise InjectionError("no complete dispatch/execution/completion triple")
    index = triples[_pick(rng, site, len(triples))]
    return list(trace[:index]) + [MIdling()] + list(trace[index + 3:])


# -- timing perturbation ----------------------------------------------------

#: Marker kinds whose action spans exactly one marker interval, so a
#: timestamp shift after them translates directly into an overrun of a
#: known bound.  (Reads span two intervals and are skipped.)
_SINGLE_INTERVAL = (MSelection, MDispatch, MExecution, MCompletion, MIdling)


def wcet_overrun(
    timed: TimedTrace,
    client: RosslClient,
    wcet: WcetModel,
    rng: random.Random,
    site: int = 0,
) -> TimedTrace:
    """Stretch one single-interval basic action past its WCET by
    shifting every later timestamp (and the horizon) by the bound."""
    candidates = [
        i
        for i, m in enumerate(timed.trace)
        if isinstance(m, _SINGLE_INTERVAL) and i + 1 < len(timed.trace)
    ]
    if not candidates:
        raise InjectionError("no complete single-interval action to stretch")
    index = candidates[_pick(rng, site, len(candidates))]
    marker = timed.trace[index]
    if isinstance(marker, MSelection):
        bound = wcet.selection
    elif isinstance(marker, MDispatch):
        bound = wcet.dispatch
    elif isinstance(marker, MExecution):
        bound = client.tasks.msg_to_task(marker.job.data).wcet
    elif isinstance(marker, MCompletion):
        bound = wcet.completion
    else:
        bound = wcet.idling
    delta = bound  # old duration ≥ 1, so new duration ≥ bound + 1 > bound
    ts = tuple(t if i <= index else t + delta for i, t in enumerate(timed.ts))
    return TimedTrace(timed.trace, ts, timed.horizon + delta)


def skew_arrivals(arrivals: ArrivalSequence, skew: int) -> ArrivalSequence:
    """Shift every arrival ``skew`` units into the future.  With a skew
    past the horizon, every successful read in the trace consumed a
    message that had not arrived — Def. 2.1 consistency is broken."""
    if skew <= 0:
        raise InjectionError("clock skew must be positive")
    return ArrivalSequence(
        Arrival(a.time + skew, a.sock, a.data) for a in arrivals
    )


def delivery_blackout(until: int) -> Callable[[int], bool]:
    """A :attr:`~repro.sim.simulator.TimedDriver.delivery_gate` that
    suppresses all message delivery while ``clock < until``.  With
    ``until`` beyond the jitter bound ``J``, a job arriving early is
    overlooked for longer than Def. 4.3 allows — the compliance checker
    must report a needed jitter exceeding ``J``."""

    def gate(clock: int) -> bool:
        return clock >= until

    return gate


def simulate_with_gate(
    client: RosslClient,
    arrivals: ArrivalSequence,
    wcet: WcetModel,
    horizon: int,
    durations: DurationPolicy,
    gate: Callable[[int], bool],
    engine: str | SchedulerEngine = "python",
) -> TimedDriver:
    """One timed run with a delivery gate installed — the ``jitter_spike``
    execution path.  Returns the driver (trace + timestamps)."""
    from repro.engine import as_engine

    backend = as_engine(engine, client)
    driver = TimedDriver(client, arrivals, wcet, horizon, durations)
    driver.delivery_gate = gate
    backend.run(driver, driver)
    return driver


# -- scheduler misbehavior --------------------------------------------------


class PriorityInversionModel(RosslModel):
    """Dequeues the *lowest*-priority pending job: dispatching it while
    a higher-priority job is pending violates the highest-priority
    clause of Def. 3.2 at the dispatch marker."""

    def _npfp_dequeue(self) -> Job | None:
        if not self._queue:
            return None
        worst_index = 0
        worst_priority = self.tasks.priority_of(self._queue[0].data)
        for i in range(1, len(self._queue)):
            priority = self.tasks.priority_of(self._queue[i].data)
            if priority < worst_priority:
                worst_index, worst_priority = i, priority
        return self._queue.pop(worst_index)


class SkippedWakeupModel(RosslModel):
    """Polls only the first socket — the E16 wait-set construction bug
    (a job on any other socket is in the system but never in the wait
    set).  The Fig. 5 automaton rejects the incomplete polling pass
    within the first pass."""

    def _check_sockets_until_empty(self, env: Environment, sink: MarkerSink) -> None:
        while True:
            any_success = False
            sock = self.sockets[0]  # BUG: the other sockets are skipped
            sink.emit(MReadS())
            data = env.read(sock)
            if data is None:
                sink.emit(MReadE(sock, None))
            else:
                job = self.trace_state.record_read(tuple(data))
                self._queue.append(job)
                any_success = True
                sink.emit(MReadE(sock, job))
            if not any_success:
                return


# -- engine-level faults ----------------------------------------------------


class _AttachForwardingSink:
    """Base for fault sinks: forwards markers to the wrapped sink and
    accepts the engine's ``attach`` offer (keeping a handle on the
    executing machine for heap access)."""

    def __init__(self, inner: MarkerSink) -> None:
        self._inner = inner
        self._machine = None

    def attach(self, machine: object) -> None:
        self._machine = machine
        # Keep VM-timing and other attach-aware endpoints working when
        # they sit behind this wrapper.
        attach = getattr(self._inner, "attach", None)
        if attach is not None:
            attach(machine)

    def emit(self, marker: Marker) -> None:  # pragma: no cover - overridden
        self._inner.emit(marker)


class HeapPoisonSink(_AttachForwardingSink):
    """On the first successful read, clobber every initialized heap cell
    back to ``Undef`` (:meth:`repro.lang.heap.Heap.poison`).  The next
    load of scheduler state is then indeterminate, which the semantics
    treats as stuck — the model checker must report the execution as a
    ``stuck`` violation (Thm. 3.4's adequacy direction)."""

    def __init__(self, inner: MarkerSink) -> None:
        super().__init__(inner)
        self.poisoned_cells: int | None = None

    def emit(self, marker: Marker) -> None:
        self._inner.emit(marker)
        if (
            self.poisoned_cells is None
            and isinstance(marker, MReadE)
            and marker.job is not None
        ):
            heap = getattr(self._machine, "heap", None)
            if heap is not None:
                self.poisoned_cells = heap.poison()


class TraceDesyncSink(_AttachForwardingSink):
    """Rewrites the second successful read to repeat the first read's
    job — the emitted trace desynchronizes from the engine's internal
    trace state ``σ_trace``, and the repeated id violates the unique-ids
    clause the monitor checks at every step."""

    def __init__(self, inner: MarkerSink) -> None:
        super().__init__(inner)
        self._first_job: Job | None = None
        self._desynced = False

    def emit(self, marker: Marker) -> None:
        if isinstance(marker, MReadE) and marker.job is not None:
            if self._first_job is None:
                self._first_job = marker.job
            elif not self._desynced:
                self._desynced = True
                marker = MReadE(marker.sock, self._first_job)
        self._inner.emit(marker)


class FaultyEngine:
    """A registry engine with a fault sink spliced into its marker path.

    Exposes the :class:`~repro.engine.SchedulerEngine` surface, so the
    bounded model checker explores it through the exact code path that
    certifies healthy engines (:func:`repro.verification.model_check.explore_with_engine`).
    """

    def __init__(
        self,
        inner: SchedulerEngine,
        sink_factory: Callable[[MarkerSink], MarkerSink],
        label: str,
    ) -> None:
        self._inner = inner
        self._sink_factory = sink_factory
        self.name = f"{inner.name}+{label}"
        self.client = inner.client
        self.capabilities = inner.capabilities

    def run(self, env, sink, fuel: int | None = None):
        return self._inner.run(env, self._sink_factory(sink), fuel=fuel)


def heap_corruption_engine(inner: SchedulerEngine) -> FaultyEngine:
    return FaultyEngine(inner, HeapPoisonSink, "heap_corruption")


def trace_desync_engine(inner: SchedulerEngine) -> FaultyEngine:
    return FaultyEngine(inner, TraceDesyncSink, "trace_state_desync")

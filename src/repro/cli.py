"""Command-line interface: ``python -m repro <command> <spec.json>``.

Commands:

* ``analyze``  — compute the overhead-aware response-time bounds
  (Thm. 4.2) for an NPFP deployment, or the demand-bound schedulability
  verdict for an EDF one;
* ``simulate`` — run a timed simulation and check the timing-correctness
  theorem (Thm. 5.1) on the execution;
* ``verify``   — bounded model check of the generated C scheduler
  (Thm. 3.4 stand-in);
* ``lint``     — static analysis of MiniC sources (or of the scheduler
  generated from a JSON spec): marker discipline, CFG/dataflow checks,
  loop bounds (docs/lang-analysis.md);
* ``source``   — print the generated MiniC translation unit;
* ``render``   — simulate a run and print its ASCII schedule timeline;
* ``wcet``     — static cost bounds for the scheduler helpers plus
  VM-measured basic-action maxima (the WCET toolchain);
* ``profile``  — run ``analyze``/``simulate``/``verify`` with
  observability on and print the span/metric profile (docs/observability.md);
* ``faults``   — deterministic fault injection (docs/faults.md):
  ``faults run`` injects a seeded fault plan and reports the detection
  rate (exit 0 only at 100% on a clean baseline); ``faults report``
  re-renders a saved JSON report;
* ``cache``    — persistent result cache maintenance (docs/caching.md):
  ``stats``, ``clear`` (``--memo`` also resets the in-process step
  cache), ``gc``.

``simulate`` and ``verify`` also take ``--inject PLAN.json``:
``simulate`` arms worker faults in the process pool (the campaign
degrades gracefully and says so) and refuses to bless runs whose
injected artifact faults were flagged; ``verify`` model-checks the
engine wrapped with the planned engine-level faults.  A plan with no
faults changes nothing — output stays byte-identical.

``analyze`` and ``simulate`` also take ``--lint`` (run the static
analyzer over the generated scheduler first; refuse to run on errors)
and ``--Werror`` (treat lint warnings as errors).  Diagnostics always go
to stderr; results stay on stdout.

``analyze``, ``simulate``, ``verify``, and ``profile`` accept
``--metrics-out PATH`` (JSONL metrics) and ``--trace-out PATH``
(Chrome trace-event JSON); recording is observational only and never
changes a result.

``analyze``, ``simulate``, and ``verify`` accept ``--cache`` (answer
from / populate the persistent result cache, docs/caching.md) and
``--no-cache`` (the explicit default).  Cached results are
byte-identical to cold ones on stdout; cache notes go to stderr.  A
``--inject`` plan bypasses the cache entirely.  ``repro cache
stats|clear|gc`` maintains the store.

All commands read the deployment from a JSON spec (see
:mod:`repro.config` for the format).
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from typing import Sequence

from repro import __version__, obs
from repro.analysis.adequacy import run_adequacy_campaign
from repro.analysis.report import format_elapsed, format_table
from repro.config import Deployment, SpecError, load_deployment
from repro.engine import engine_names
from repro.faults.plan import PlanError
from repro.lang.errors import MiniCError
from repro.rta.npfp import analyse


def _jobs_count(text: str) -> int:
    """argparse type for ``--jobs``: an integer ≥ 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"--jobs takes an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"--jobs must be at least 1, got {value}")
    return value


def _cache_store(args: argparse.Namespace):
    """The persistent result store selected by ``--cache``, or ``None``.

    Safety rail: any ``--inject`` fault plan bypasses the cache entirely
    (with a stderr note) — a cached clean result must never mask an
    injected defect, and a defective run must never poison the store.
    """
    if not getattr(args, "cache", False):
        return None
    if getattr(args, "inject", None) is not None:
        print(
            "cache: bypassed (--inject present; fault injection never "
            "reads or writes the cache)",
            file=sys.stderr,
        )
        return None
    from repro.cache import default_store

    return default_store()


def _cache_note(store) -> None:
    """Hit/miss note on stderr — stdout stays byte-identical."""
    print(
        f"cache: {store.hits} hit(s), {store.misses} miss(es) "
        f"[{store.stats().path}]",
        file=sys.stderr,
    )


def _lint_gate(deployment: Deployment, args: argparse.Namespace):
    """Run the static analyzer over the generated scheduler when
    ``--lint`` was given.  Returns the report, or ``None`` when linting
    is off; the caller must stop if ``report.exit_code(...)`` is
    non-zero."""
    if not getattr(args, "lint", False):
        return None
    from repro.lang.analysis import analyze_client

    report = analyze_client(deployment.client, source_name=args.spec)
    print(report.format(), file=sys.stderr)
    return report


def format_edf_analysis(result) -> tuple[str, int]:
    """The exact stdout bytes of ``repro analyze`` on an EDF spec, plus
    the exit code.  Shared with :mod:`repro.serve` so daemon responses
    are byte-identical to offline CLI output by construction."""
    lines = [
        "policy: EDF (non-preemptive)",
        f"jitter bound J = {result.jitter.bound}",
        f"schedulable: {result.schedulable}",
    ]
    if result.busy_bound is not None:
        lines.append(f"busy bound: {result.busy_bound}")
    if result.failing_window is not None:
        lines.append(
            f"demand exceeds supply at window length {result.failing_window}"
        )
    return "\n".join(lines) + "\n", 0 if result.schedulable else 1


def format_npfp_analysis(analysis) -> tuple[str, int]:
    """The exact stdout bytes of ``repro analyze`` on an NPFP spec, plus
    the exit code (shared with :mod:`repro.serve`)."""
    text = (
        f"policy: NPFP; jitter bound J = {analysis.jitter.bound}\n"
        + format_table(
            ["task", "C_i", "priority", "R (release)", "R+J (arrival)"],
            analysis.rows(),
        )
        + "\n"
    )
    return text, 0 if analysis.schedulable else 1


def _cmd_analyze(deployment: Deployment, args: argparse.Namespace) -> int:
    lint_report = _lint_gate(deployment, args)
    if lint_report is not None and lint_report.exit_code(args.werror):
        return 1
    client, wcet = deployment.client, deployment.wcet
    if client.policy == "edf":
        from repro.edf import edf_analysis

        result = edf_analysis(
            client, wcet, horizon=args.horizon, kernel=_kernel_choice(args)
        )
        text, code = format_edf_analysis(result)
        sys.stdout.write(text)
        return code
    store = _cache_store(args)
    if store is not None:
        from repro.cache import cached_analyse

        analysis = cached_analyse(
            client, wcet, args.horizon, store, kernel=_kernel_choice(args)
        )
        _cache_note(store)
    else:
        analysis = analyse(
            client, wcet, horizon=args.horizon, kernel=_kernel_choice(args)
        )
    text, code = format_npfp_analysis(analysis)
    sys.stdout.write(text)
    return code


def _split_inject_plan(args: argparse.Namespace):
    """Load ``--inject`` and split it into (plan, worker specs, artifact
    specs).  Returns ``(None, [], [])`` when no plan was given."""
    path = getattr(args, "inject", None)
    if path is None:
        return None, [], []
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.load(path)
    workers = [f for f in plan.faults if f.kind.startswith("worker_")]
    artifacts = [f for f in plan.faults if not f.kind.startswith("worker_")]
    return plan, workers, artifacts


def _cmd_simulate(deployment: Deployment, args: argparse.Namespace) -> int:
    client, wcet = deployment.client, deployment.wcet
    if client.policy == "edf":
        print("simulate currently drives the NPFP analysis pipeline; "
              "EDF specs are checked with 'analyze'", file=sys.stderr)
        return 2
    lint_report = _lint_gate(deployment, args)
    if lint_report is not None and lint_report.exit_code(args.werror):
        return 1
    plan, worker_specs, artifact_specs = _split_inject_plan(args)
    worker_fault = None
    worker_timeout = None
    if worker_specs:
        from repro.analysis.parallel import WorkerFault

        spec = worker_specs[0]
        kind = spec.kind.removeprefix("worker_")
        # times ≥ retries+1 so the fault survives the retry budget and
        # the degradation is actually observable in the report.
        worker_fault = WorkerFault(
            kind=kind, chunk_index=spec.site, times=max(spec.param, 2)
        )
        if kind == "hang":
            from repro.faults.campaign import HANG_PROBE_TIMEOUT

            worker_timeout = HANG_PROBE_TIMEOUT
    store = _cache_store(args)
    report = run_adequacy_campaign(
        client,
        wcet,
        horizon=args.horizon,
        runs=args.runs,
        seed=args.seed,
        intensity=args.intensity,
        engine=args.engine or deployment.engine,
        jobs=args.jobs,
        worker_timeout=worker_timeout,
        worker_fault=worker_fault,
        cache=store,
        kernel=_kernel_choice(args),
    )
    if store is not None:
        _cache_note(store)
    if lint_report is not None:
        from repro.lang.analysis import bound_warnings

        report.static_warnings = bound_warnings(lint_report)
    # The table goes to stdout (bit-identical across jobs=1/jobs=N);
    # wall clock is inherently nondeterministic, so it goes to stderr.
    print(report.table())
    if report.elapsed_seconds is not None:
        print(format_elapsed(report.elapsed_seconds), file=sys.stderr)
    report_out = getattr(args, "report_out", None)
    if report_out:
        import json

        with open(report_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote campaign report to {report_out}", file=sys.stderr)
    code = 0 if report.ok else 1
    if artifact_specs:
        # Artifact faults corrupt run products, not the live campaign:
        # inject them into a baseline run, report what the checkers made
        # of each (stderr — stdout keeps the campaign table only), and
        # never bless a run whose artifacts were flagged.
        from repro.faults.campaign import run_fault_campaign
        from repro.faults.plan import FaultPlan

        sub_plan = FaultPlan(seed=plan.seed, faults=tuple(artifact_specs))
        fault_report = run_fault_campaign(
            sub_plan, client, wcet, horizon=min(args.horizon, 20_000)
        )
        any_flagged = False
        for outcome in fault_report.outcomes:
            if outcome.flagged:
                any_flagged = True
                print(
                    f"injected {outcome.kind}: flagged by "
                    f"{', '.join(name for name, _ in outcome.flagged)}",
                    file=sys.stderr,
                )
            else:
                print(
                    f"injected {outcome.kind}: NOT flagged — {outcome.detail}",
                    file=sys.stderr,
                )
        if any_flagged:
            code = 1
    return code


def _campaign_keys(client, wcet, engine, args) -> list[str]:
    """The content-addressed key of every run of the CLI campaign, or
    ``SpecError`` when the inputs cannot be fingerprinted."""
    from repro.cache import UnfingerprintableError, campaign_run_key

    try:
        return [
            campaign_run_key(
                client, wcet, engine,
                horizon=args.horizon, runs=args.runs, seed_root=args.seed,
                intensity=args.intensity, adversarial_fraction=0.5,
                analysis_horizon=1_000_000, index=index,
            )
            for index in range(args.runs)
        ]
    except UnfingerprintableError as exc:
        raise SpecError(
            f"campaign inputs cannot be fingerprinted: {exc}"
        ) from exc


def _cmd_campaign_run(deployment: Deployment, args: argparse.Namespace) -> int:
    """``repro campaign run``: the distributed, resumable campaign.

    stdout carries exactly the bytes ``repro simulate`` would print for
    the same spec/seed/horizon — byte-identical regardless of worker
    count, interleaving, kill points, or how many resumes it took.  An
    incomplete campaign (round budget exhausted) prints nothing to
    stdout and exits 3; rerunning with ``--resume`` continues from the
    store.
    """
    from repro.cache import default_store
    from repro.dist import FabricConfig, LeaseBroker, leases_dir

    client, wcet = deployment.client, deployment.wcet
    if client.policy == "edf":
        print("campaign currently drives the NPFP analysis pipeline; "
              "EDF specs are checked with 'analyze'", file=sys.stderr)
        return 2
    engine = args.engine or deployment.engine
    store = default_store()
    keys = _campaign_keys(client, wcet, engine, args)
    broker = LeaseBroker(leases_dir(store.directory), owner=f"cli:{os.getpid()}")
    if args.resume:
        held = sum(1 for key in keys if broker.holder(key) is not None)
        if held:
            print(
                f"resume: {held} lease(s) left by earlier workers "
                "(dead owners are reclaimed, live ones respected)",
                file=sys.stderr,
            )
    else:
        # A fresh (non-resume) run owns its coordination state: drop any
        # lease left on this campaign's keys by an earlier attempt.
        dropped = sum(1 for key in keys if broker.break_lease(key))
        if dropped:
            print(f"cleared {dropped} stale lease(s)", file=sys.stderr)
    config = FabricConfig(
        workers=args.dist_workers,
        lease_ttl=args.lease_ttl,
        steal=not args.no_steal,
        max_rounds=args.max_rounds,
    )
    report = run_adequacy_campaign(
        client, wcet,
        horizon=args.horizon, runs=args.runs, seed=args.seed,
        intensity=args.intensity, engine=engine,
        cache=store, kernel=_kernel_choice(args), fabric=config,
    )
    _cache_note(store)
    if report.shard_failures:
        print(
            f"campaign incomplete: {len(report.shard_failures)} run(s) "
            f"still missing after the round budget; rerun with --resume "
            "to continue from the store",
            file=sys.stderr,
        )
        return 3
    print(report.table())
    if report.elapsed_seconds is not None:
        print(format_elapsed(report.elapsed_seconds), file=sys.stderr)
    report_out = getattr(args, "report_out", None)
    if report_out:
        import json

        with open(report_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote campaign report to {report_out}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_campaign_status(deployment: Deployment, args: argparse.Namespace) -> int:
    """``repro campaign status``: cached/missing/leased counts for one
    campaign configuration.  Exits 0 when complete, 3 otherwise."""
    from repro.cache import default_store
    from repro.dist import LeaseBroker, leases_dir, stored_outcome

    client, wcet = deployment.client, deployment.wcet
    if client.policy == "edf":
        print("campaign currently drives the NPFP analysis pipeline; "
              "EDF specs are checked with 'analyze'", file=sys.stderr)
        return 2
    engine = args.engine or deployment.engine
    store = default_store()
    keys = _campaign_keys(client, wcet, engine, args)
    missing = [
        index for index in range(args.runs)
        if stored_outcome(store, keys[index], index) is None
    ]
    broker = LeaseBroker(leases_dir(store.directory), owner=f"cli:{os.getpid()}")
    leased = expired = 0
    for index in missing:
        info = broker.holder(keys[index])
        if info is None:
            continue
        if broker.expired(info):
            expired += 1
        else:
            leased += 1
    complete = not missing
    print(f"campaign: runs={args.runs} seed={args.seed} "
          f"horizon={args.horizon} engine={engine}")
    print(f"store: {store.stats().path}")
    print(f"cached: {args.runs - len(missing)}/{args.runs}")
    print(f"missing: {len(missing)}")
    print(f"leased: {leased} active, {expired} expired")
    print(f"complete: {'yes' if complete else 'no'}")
    return 0 if complete else 3


def verification_payloads(client) -> list[tuple[int, int]]:
    """The message payloads ``repro verify`` explores for a client —
    one per task type (shared with :mod:`repro.serve`)."""
    payloads = []
    for task in client.tasks:
        if client.policy == "edf":
            payloads.append((task.type_tag, 10_000))
        else:
            payloads.append((task.type_tag, 0))
    return payloads


def format_verification(report) -> tuple[str, int]:
    """The exact stdout bytes of ``repro verify``, plus the exit code
    (shared with :mod:`repro.serve`)."""
    lines = [report.summary()]
    for violation in report.violations[:5]:
        lines.append(f"  [{violation.kind}] {violation.detail}")
    return "\n".join(lines) + "\n", 0 if report.ok else 1


def _cmd_verify(deployment: Deployment, args: argparse.Namespace) -> int:
    from repro.verification.model_check import explore

    client = deployment.client
    payloads = verification_payloads(client)
    plan, worker_specs, artifact_specs = _split_inject_plan(args)
    if plan is not None and plan.faults:
        # Only engine-level faults make sense under 'verify': the model
        # checker examines the engine, not simulated artifacts.
        from repro.engine import create_engine, resolve_engine_name
        from repro.faults import inject as fault_inject
        from repro.verification.model_check import explore_with_engine

        wrappers = {
            "heap_corruption": fault_inject.heap_corruption_engine,
            "trace_state_desync": fault_inject.trace_desync_engine,
        }
        unsupported = [
            f.kind for f in plan.faults if f.kind not in wrappers
        ]
        if unsupported:
            print(
                "error: verify --inject supports engine-level faults only "
                f"({', '.join(sorted(wrappers))}); plan contains "
                f"{', '.join(unsupported)}",
                file=sys.stderr,
            )
            return 2
        engine = create_engine(
            resolve_engine_name(args.engine or args.semantics), client
        )
        for fault in plan.faults:
            engine = wrappers[fault.kind](engine)
        print(f"injecting into engine: {engine.name}", file=sys.stderr)
        report = explore_with_engine(
            client, payloads, max_reads=args.depth, engine=engine
        )
    else:
        store = _cache_store(args)
        if store is not None:
            from repro.cache import cached_explore

            report = cached_explore(
                client,
                payloads,
                max_reads=args.depth,
                implementation=args.engine or args.semantics,
                jobs=args.jobs,
                store=store,
            )
            _cache_note(store)
        else:
            report = explore(
                client,
                payloads,
                max_reads=args.depth,
                implementation=args.engine or args.semantics,
                jobs=args.jobs,
            )
    text, code = format_verification(report)
    sys.stdout.write(text)
    return code


def _cmd_source(deployment: Deployment, args: argparse.Namespace) -> int:
    from repro.rossl.source import rossl_source

    print(rossl_source(deployment.client))
    return 0


def _cmd_render(deployment: Deployment, args: argparse.Namespace) -> int:
    from repro.schedule.render import render_timeline
    from repro.sim.simulator import UniformDurations, simulate
    from repro.sim.workloads import generate_arrivals

    client = deployment.client
    rng = random.Random(args.seed)
    arrivals = generate_arrivals(
        client, horizon=max(1, args.horizon * 3 // 4), rng=rng,
        intensity=args.intensity,
    )
    if client.policy == "edf":
        from repro.edf import with_deadline_payloads

        arrivals = with_deadline_payloads(arrivals, client.tasks)
    result = simulate(client, arrivals, deployment.wcet, args.horizon,
                      durations=UniformDurations(rng))
    print(f"{len(arrivals)} arrivals, {len(result.timed_trace)} markers")
    print(render_timeline(result.schedule(), width=args.width))
    return 0


def _cmd_profile(deployment: Deployment, args: argparse.Namespace) -> int:
    from repro.obs.export import text_summary

    handlers = {
        "analyze": _cmd_analyze,
        "simulate": _cmd_simulate,
        "verify": _cmd_verify,
    }
    if args.horizon is None:
        args.horizon = 1_000_000 if args.profile_command == "analyze" else 100_000
    with obs.span("cli.profile", command=args.profile_command):
        code = handlers[args.profile_command](deployment, args)
    print()
    print(text_summary())
    return code


def _cmd_wcet(deployment: Deployment, args: argparse.Namespace) -> int:
    from repro.lang.cost import CostAnalyzer
    from repro.lang.parser import parse_program
    from repro.lang.typecheck import typecheck
    from repro.rossl.source import rossl_source
    from repro.rossl.vmtiming import measure_wcet_model, simulate_vm
    from repro.sim.workloads import generate_arrivals
    from repro.timing.arrivals import ArrivalSequence

    client = deployment.client
    backlog = args.backlog
    typed = typecheck(parse_program(rossl_source(client)))
    analyzer = CostAnalyzer(
        typed, {"npfp_enqueue": [backlog], "npfp_dequeue": [backlog, backlog]}
    )
    rows = [
        (name, analyzer.call_cost(name))
        for name in ("npfp_enqueue", "npfp_dequeue", "job_priority")
    ]
    print(format_table(
        ["helper", f"static cost bound (backlog ≤ {backlog})"], rows,
        title="static analysis (VM instructions)",
    ))
    if not client.tasks.has_curves:
        print("\n(no arrival curves in the spec: skipping VM measurement)")
        return 0
    rng = random.Random(args.seed)
    runs = [simulate_vm(client, ArrivalSequence([]), 10_000)]
    for _ in range(3):
        arrivals = generate_arrivals(client, horizon=20_000, rng=rng)
        if client.policy == "edf":
            from repro.edf import with_deadline_payloads

            arrivals = with_deadline_payloads(arrivals, client.tasks)
        runs.append(simulate_vm(client, arrivals, 60_000))
    measured = measure_wcet_model(runs, margin=args.margin)
    print(f"\nmeasured WCET model (margin ×{args.margin}): {measured.wcet}")
    if measured.exec_maxima:
        print(f"measured callback costs: {measured.exec_maxima}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis over MiniC files (or the scheduler generated from
    JSON specs).  Diagnostics go to stderr (``--json``: stdout); exit 0
    when clean, 1 on errors (or warnings under ``--Werror``), 2 when an
    input cannot be read."""
    from repro.lang.analysis import Severity, analyze_client, analyze_source

    worst = 0
    min_severity = Severity.WARNING if args.quiet else Severity.INFO
    for path in args.paths:
        if str(path).endswith(".json"):
            try:
                deployment = load_deployment(path)
            except SpecError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            report = analyze_client(deployment.client, source_name=str(path))
        else:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                print(f"error: cannot read {path}: {exc}", file=sys.stderr)
                return 2
            report = analyze_source(source, source_name=str(path))
        if args.json:
            print(report.to_json())
        else:
            print(report.format(min_severity), file=sys.stderr)
        worst = max(worst, report.exit_code(args.werror))
    return worst


def _cmd_faults_run(deployment: Deployment, args: argparse.Namespace) -> int:
    """Inject a fault plan and demand 100% detection (docs/faults.md)."""
    from repro.faults.campaign import run_fault_campaign
    from repro.faults.corpus import curated_plan
    from repro.faults.plan import FaultPlan

    client, wcet = deployment.client, deployment.wcet
    if client.policy == "edf":
        print("faults run targets the NPFP pipeline; EDF specs are not "
              "supported", file=sys.stderr)
        return 2
    if args.plan is not None:
        plan = FaultPlan.load(args.plan)
    else:
        plan = curated_plan(args.seed)
    report = run_fault_campaign(plan, client, wcet, horizon=args.horizon)
    if args.json:
        print(report.to_json(), end="")
    else:
        print(report.table())
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"wrote detection report to {args.report_out}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_faults_report(args: argparse.Namespace) -> int:
    """Re-render a saved detection report (JSON → text)."""
    from repro.faults.campaign import FaultCampaignReport

    try:
        with open(args.report, "r", encoding="utf-8") as handle:
            report = FaultCampaignReport.from_json(handle.read())
    except OSError as exc:
        print(f"error: cannot read {args.report}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: {args.report} is not a detection report: {exc}",
              file=sys.stderr)
        return 2
    print(report.table())
    return 0 if report.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    """Persistent-cache maintenance: ``repro cache stats|clear|gc``."""
    from repro.cache import default_store

    store = default_store()
    if args.cache_command == "stats":
        if getattr(args, "json", False):
            # Machine-readable form — the same document the daemon's
            # GET /cache/stats endpoint serves (one schema, docs/serving.md).
            import json

            from repro.cache import cache_stats_payload

            print(json.dumps(cache_stats_payload(store), indent=2,
                             sort_keys=True))
            return 0
        from repro.rta.curves import memo_cache_info, token_table_info
        from repro.rta.kernel import supply_pool_info, table_cache_info
        from repro.rta.sbf import sbf_pool_info

        stats = store.stats()
        print(f"cache directory: {stats.path}")
        print(f"entries: {stats.entries}")
        print(f"bytes: {stats.bytes} (budget {stats.max_bytes})")
        if stats.corrupt:
            print(f"corrupt entries skipped: {stats.corrupt}")
        memo = memo_cache_info()
        print(
            f"memo cache: {memo.currsize}/{memo.maxsize} entries "
            f"({memo.hits} hits, {memo.misses} misses)"
        )
        tokens = token_table_info()
        print(
            f"curve token table: {tokens.size}/{tokens.limit} tokens "
            f"(epoch {tokens.epoch})"
        )
        legacy_pool = sbf_pool_info()
        kernel_pool = supply_pool_info()
        print(
            f"SBF pools: legacy {legacy_pool.size}/{legacy_pool.limit}, "
            f"kernel {kernel_pool.size}/{kernel_pool.limit}"
        )
        tables = table_cache_info()
        print(f"compiled step tables: {tables.size}/{tables.limit}")
        return 0
    if args.cache_command == "clear":
        dropped = store.clear()
        print(f"dropped {dropped} cached entr{'y' if dropped == 1 else 'ies'}")
        if args.memo:
            from repro.rta.curves import memo_cache_clear

            memo_cache_clear()
            print("reset the in-process memo cache")
        return 0
    if args.cache_command == "gc":
        evicted = store.gc(args.max_bytes)
        stats = store.stats()
        print(
            f"evicted {evicted} entr{'y' if evicted == 1 else 'ies'}; "
            f"{stats.entries} left, {stats.bytes} bytes on disk"
        )
        return 0
    raise AssertionError(f"unknown cache command {args.cache_command!r}")


def _parse_deadline_overrides(pairs):
    """``--deadline CLASS=MS`` overrides over the default policies."""
    from repro.serve.admission import DEFAULT_POLICIES, ClassPolicy

    policies = {p.name: p for p in DEFAULT_POLICIES}
    for pair in pairs or ():
        name, sep, value = pair.partition("=")
        if not sep or name not in policies:
            known = ", ".join(sorted(policies))
            raise SystemExit(
                f"error: --deadline takes CLASS=MILLISECONDS with CLASS "
                f"one of {known}; got {pair!r}"
            )
        try:
            deadline_ms = int(value)
        except ValueError:
            raise SystemExit(
                f"error: --deadline {name}: {value!r} is not an integer"
            )
        base = policies[name]
        policies[name] = ClassPolicy(
            name=base.name, priority=base.priority,
            deadline_ms=deadline_ms, default_cost_ms=base.default_cost_ms,
        )
    return tuple(policies[p.name] for p in DEFAULT_POLICIES)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the analysis daemon (docs/serving.md)."""
    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        batch_window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        admission=not args.no_admission,
        policies=_parse_deadline_overrides(args.deadline),
        request_timeout=args.request_timeout,
    )
    return run_server(config)


def _cmd_client(args: argparse.Namespace) -> int:
    """Talk to a running daemon; analysis output lands on stdout exactly
    as the offline command would have printed it."""
    import json

    from repro.serve.client import ServeClient, ServeConnectionError

    client = ServeClient(host=args.host, port=args.port, timeout=args.timeout)
    try:
        command = args.client_command
        if command in ("metrics", "healthz", "cache-stats"):
            fetch = {
                "metrics": client.metrics,
                "healthz": client.healthz,
                "cache-stats": client.cache_stats,
            }[command]
            print(json.dumps(fetch(), indent=2, sort_keys=True))
            return 0
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read spec {args.spec}: {exc}", file=sys.stderr)
            return 2
        options = {}
        for name in ("horizon", "runs", "seed", "intensity", "engine",
                     "depth"):
            value = getattr(args, name, None)
            if value is not None:
                options[name] = value
        if getattr(args, "cache", False):
            options["cache"] = True
        if command == "lint":
            # Offline lint names diagnostics after the spec path; ship
            # the same name so remote output byte-matches `repro lint
            # --json SPEC`.
            options["source_name"] = str(args.spec)
        status, payload = client.call(command, spec, options)
    except ServeConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if status == 503:
        retry_after = payload.get("retry_after", 1)
        print(
            f"server shed the request ({payload.get('reason', 'overload')}); "
            f"retry after {retry_after}s",
            file=sys.stderr,
        )
        return 75  # EX_TEMPFAIL
    if status != 200:
        print(
            f"error: server answered {status}: "
            f"{payload.get('error') or payload.get('stderr') or payload}",
            file=sys.stderr,
        )
        return 2
    if payload.get("stderr"):
        sys.stderr.write(payload["stderr"])
        if not payload["stderr"].endswith("\n"):
            sys.stderr.write("\n")
    sys.stdout.write(payload.get("stdout", ""))
    return int(payload.get("exit_code", 0))


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    """``--cache``/``--no-cache`` shared by analyze, simulate, verify."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--cache", action="store_true",
        help="answer from / populate the persistent result cache "
        "(docs/caching.md); results are byte-identical to cold runs",
    )
    group.add_argument(
        "--no-cache", dest="no_cache", action="store_true",
        help="run without the persistent cache (the default, spelled out)",
    )


def _add_kernel_flags(parser: argparse.ArgumentParser) -> None:
    """``--kernel``/``--no-kernel`` shared by analyze, simulate, profile.

    Both paths produce byte-identical results (docs/rta-kernel.md);
    ``--no-kernel`` is the escape hatch / differential oracle."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--kernel", dest="kernel", action="store_true", default=None,
        help="force the step-table RTA kernel (the default path)",
    )
    group.add_argument(
        "--no-kernel", dest="kernel", action="store_false",
        help="use the legacy call-per-step RTA path (differential oracle)",
    )


def _kernel_choice(args: argparse.Namespace) -> bool | None:
    return getattr(args, "kernel", None)


def _add_lint_flags(parser: argparse.ArgumentParser) -> None:
    """``--lint``/``--Werror`` shared by analyze and simulate."""
    parser.add_argument(
        "--lint", action="store_true",
        help="run the static analyzer over the generated scheduler first; "
        "refuse to run when it reports errors",
    )
    parser.add_argument(
        "--Werror", dest="werror", action="store_true",
        help="treat lint warnings as errors",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability outputs shared by analyze/simulate/verify/profile."""
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="enable observability and write metrics as JSONL to PATH",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="enable observability and write a chrome://tracing-loadable "
        "span trace (JSON) to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RefinedProsa reproduction: analyze/simulate/verify "
        "Rössl deployments",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="response-time analysis")
    analyze.add_argument("spec", help="deployment spec (JSON)")
    analyze.add_argument("--horizon", type=int, default=1_000_000)
    _add_lint_flags(analyze)
    _add_obs_flags(analyze)
    _add_cache_flags(analyze)
    _add_kernel_flags(analyze)
    analyze.set_defaults(handler=_cmd_analyze)

    simulate = sub.add_parser("simulate", help="timed simulation campaign")
    simulate.add_argument("spec")
    simulate.add_argument("--horizon", type=int, default=100_000)
    simulate.add_argument("--runs", type=int, default=5)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--intensity", type=float, default=1.0)
    simulate.add_argument(
        "--engine", choices=engine_names(), default=None,
        help="execution backend (default: the spec's engine, or 'python')",
    )
    simulate.add_argument(
        "--jobs", type=_jobs_count, default=1,
        help="worker processes for the campaign (≥ 1)",
    )
    simulate.add_argument(
        "--inject", metavar="PLAN", default=None,
        help="fault plan (JSON, docs/faults.md): worker faults are armed "
        "in the process pool; artifact faults are injected into a "
        "baseline run and their detection reported on stderr",
    )
    simulate.add_argument(
        "--report-out", metavar="PATH", default=None,
        help="also write the campaign report as deterministic JSON to PATH",
    )
    _add_lint_flags(simulate)
    _add_obs_flags(simulate)
    _add_cache_flags(simulate)
    _add_kernel_flags(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    campaign = sub.add_parser(
        "campaign",
        help="distributed, resumable simulation campaigns "
        "(docs/distributed.md)",
    )
    campsub = campaign.add_subparsers(dest="campaign_command", required=True)
    crun = campsub.add_parser(
        "run",
        help="run (or resume) a campaign on work-stealing workers over "
        "the shared result store",
    )
    crun.add_argument("spec")
    crun.add_argument("--horizon", type=int, default=100_000)
    crun.add_argument("--runs", type=int, default=5)
    crun.add_argument("--seed", type=int, default=0)
    crun.add_argument("--intensity", type=float, default=1.0)
    crun.add_argument(
        "--engine", choices=engine_names(), default=None,
        help="execution backend (default: the spec's engine, or 'python')",
    )
    crun.add_argument(
        "--dist-workers", type=_jobs_count, default=2, metavar="N",
        help="fabric worker processes per round (≥ 1)",
    )
    crun.add_argument(
        "--resume", action="store_true",
        help="respect leases left by a previous (possibly killed) run "
        "instead of clearing them",
    )
    crun.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="lease expiry: how long a silent worker keeps its claim",
    )
    crun.add_argument(
        "--max-rounds", type=int, default=8, metavar="N",
        help="round budget before the campaign reports incomplete "
        "(exit 3; rerun with --resume)",
    )
    crun.add_argument(
        "--no-steal", action="store_true",
        help="disable cross-shard work stealing (testing/benchmarks)",
    )
    crun.add_argument(
        "--report-out", metavar="PATH", default=None,
        help="also write the campaign report as deterministic JSON to PATH",
    )
    _add_obs_flags(crun)
    _add_kernel_flags(crun)
    crun.set_defaults(handler=_cmd_campaign_run)
    cstatus = campsub.add_parser(
        "status",
        help="cached/missing/leased counts for one campaign configuration",
    )
    cstatus.add_argument("spec")
    cstatus.add_argument("--horizon", type=int, default=100_000)
    cstatus.add_argument("--runs", type=int, default=5)
    cstatus.add_argument("--seed", type=int, default=0)
    cstatus.add_argument("--intensity", type=float, default=1.0)
    cstatus.add_argument(
        "--engine", choices=engine_names(), default=None,
        help="execution backend (default: the spec's engine, or 'python')",
    )
    cstatus.set_defaults(handler=_cmd_campaign_status)

    verify = sub.add_parser("verify", help="bounded model check of the C code")
    verify.add_argument("spec")
    verify.add_argument("--depth", type=int, default=4)
    verify.add_argument(
        "--semantics", choices=("minic", "python"), default="minic",
        help="legacy spelling of --engine ('minic' is the interp engine)",
    )
    verify.add_argument(
        "--engine", choices=engine_names(), default=None,
        help="execution backend to model-check (overrides --semantics)",
    )
    verify.add_argument(
        "--jobs", type=_jobs_count, default=1,
        help="worker processes for the exploration (≥ 1)",
    )
    verify.add_argument(
        "--inject", metavar="PLAN", default=None,
        help="fault plan with engine-level faults (heap_corruption, "
        "trace_state_desync): model-check the wrapped engine",
    )
    _add_obs_flags(verify)
    _add_cache_flags(verify)
    verify.set_defaults(handler=_cmd_verify)

    profile = sub.add_parser(
        "profile",
        help="run a command with observability on and print the profile",
    )
    profile.add_argument("spec")
    profile.add_argument(
        "--command", dest="profile_command",
        choices=("analyze", "simulate", "verify"), default="analyze",
        help="which pipeline to profile (default: analyze)",
    )
    profile.add_argument(
        "--horizon", type=int, default=None,
        help="defaults to the profiled command's own default",
    )
    profile.add_argument("--runs", type=int, default=5)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--intensity", type=float, default=1.0)
    profile.add_argument("--depth", type=int, default=4)
    profile.add_argument(
        "--semantics", choices=("minic", "python"), default="minic",
        help=argparse.SUPPRESS,  # legacy spelling, used by the verify handler
    )
    profile.add_argument(
        "--engine", choices=engine_names(), default=None,
        help="execution backend for simulate/verify",
    )
    profile.add_argument(
        "--jobs", type=_jobs_count, default=1,
        help="worker processes (≥ 1); worker metrics merge into the profile",
    )
    _add_obs_flags(profile)
    _add_kernel_flags(profile)
    profile.set_defaults(handler=_cmd_profile)

    source = sub.add_parser("source", help="print the generated MiniC")
    source.add_argument("spec")
    source.set_defaults(handler=_cmd_source)

    render = sub.add_parser("render", help="ASCII timeline of a simulated run")
    render.add_argument("spec")
    render.add_argument("--horizon", type=int, default=2_000)
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--width", type=int, default=100)
    render.add_argument("--intensity", type=float, default=1.2)
    render.set_defaults(handler=_cmd_render)

    lint = sub.add_parser(
        "lint", help="static analysis of MiniC sources / generated schedulers"
    )
    lint.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="MiniC source files (.c) or deployment specs (.json)",
    )
    lint.add_argument(
        "--Werror", dest="werror", action="store_true",
        help="treat warnings as errors (exit 1)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit diagnostics as JSON on stdout instead of text on stderr",
    )
    lint.add_argument(
        "--quiet", action="store_true",
        help="suppress info-severity diagnostics",
    )
    lint.set_defaults(handler=_cmd_lint, needs_spec=False)

    faults = sub.add_parser(
        "faults", help="deterministic fault-injection campaigns"
    )
    fsub = faults.add_subparsers(dest="faults_command", required=True)
    frun = fsub.add_parser(
        "run", help="inject a seeded fault plan and report detection"
    )
    frun.add_argument("spec", help="deployment spec (JSON)")
    frun.add_argument(
        "--seed", type=int, default=0,
        help="seed for the curated all-kinds plan (ignored with --plan)",
    )
    frun.add_argument(
        "--plan", metavar="PLAN", default=None,
        help="fault plan JSON (default: the curated plan, one fault of "
        "every kind)",
    )
    frun.add_argument("--horizon", type=int, default=20_000)
    frun.add_argument(
        "--report-out", metavar="PATH", default=None,
        help="also write the detection report as JSON to PATH",
    )
    frun.add_argument(
        "--json", action="store_true",
        help="print the JSON report on stdout instead of the text table",
    )
    _add_obs_flags(frun)
    frun.set_defaults(handler=_cmd_faults_run)
    freport = fsub.add_parser(
        "report", help="re-render a saved detection report"
    )
    freport.add_argument(
        "report", help="REPORT.json written by 'faults run --report-out'"
    )
    freport.set_defaults(handler=_cmd_faults_report, needs_spec=False)

    cache = sub.add_parser(
        "cache", help="persistent result cache maintenance (docs/caching.md)"
    )
    csub = cache.add_subparsers(dest="cache_command", required=True)
    cstats = csub.add_parser("stats", help="show cache location and size")
    cstats.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable stats document (the same schema "
        "the daemon's GET /cache/stats endpoint serves)",
    )
    cstats.set_defaults(handler=_cmd_cache, needs_spec=False)
    cclear = csub.add_parser("clear", help="drop every cached entry")
    cclear.add_argument(
        "--memo", action="store_true",
        help="also reset the in-process MemoCurve step cache",
    )
    cclear.set_defaults(handler=_cmd_cache, needs_spec=False)
    cgc = csub.add_parser(
        "gc", help="compact the store, evicting LRU entries to fit the budget"
    )
    cgc.add_argument(
        "--max-bytes", type=int, default=None,
        help="target size in bytes (default: the store's budget, "
        "$REPRO_CACHE_MAX_BYTES or 64 MiB)",
    )
    cgc.set_defaults(handler=_cmd_cache, needs_spec=False)

    serve = sub.add_parser(
        "serve", help="run the analysis daemon (docs/serving.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8750,
        help="TCP port (0 picks a free one; the bound port is announced "
        "on stderr)",
    )
    serve.add_argument(
        "--workers", type=_jobs_count, default=2,
        help="resident worker processes (≥ 1)",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="how long the first analyze call of a batch waits for "
        "compatible company (milliseconds)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8,
        help="most analyze calls coalesced into one dispatch",
    )
    serve.add_argument(
        "--no-admission", action="store_true",
        help="disable RTA-informed admission control (every request queues)",
    )
    serve.add_argument(
        "--deadline", action="append", metavar="CLASS=MS", default=None,
        help="override a class deadline, e.g. --deadline analyze=500 "
        "(repeatable; classes: lint, analyze, verify, simulate)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=300.0,
        help="per-dispatch worker timeout in seconds (a worker past it "
        "is killed and respawned)",
    )
    serve.set_defaults(handler=_cmd_serve, needs_spec=False)

    client = sub.add_parser(
        "client", help="call a running analysis daemon (docs/serving.md)"
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8750)
    client.add_argument(
        "--timeout", type=float, default=300.0,
        help="HTTP timeout in seconds",
    )
    clsub = client.add_subparsers(dest="client_command", required=True)
    canalyze = clsub.add_parser("analyze", help="remote response-time analysis")
    canalyze.add_argument("spec")
    canalyze.add_argument("--horizon", type=int, default=None)
    canalyze.add_argument("--cache", action="store_true")
    csimulate = clsub.add_parser("simulate", help="remote simulation campaign")
    csimulate.add_argument("spec")
    csimulate.add_argument("--horizon", type=int, default=None)
    csimulate.add_argument("--runs", type=int, default=None)
    csimulate.add_argument("--seed", type=int, default=None)
    csimulate.add_argument("--intensity", type=float, default=None)
    csimulate.add_argument("--engine", choices=engine_names(), default=None)
    csimulate.add_argument("--cache", action="store_true")
    cverify = clsub.add_parser("verify", help="remote bounded model check")
    cverify.add_argument("spec")
    cverify.add_argument("--depth", type=int, default=None)
    cverify.add_argument("--engine", choices=engine_names(), default=None)
    cverify.add_argument("--cache", action="store_true")
    clint = clsub.add_parser("lint", help="remote static analysis (JSON out)")
    clint.add_argument("spec")
    for probe, description in (
        ("metrics", "print the daemon's /metrics document"),
        ("healthz", "print the daemon's /healthz document"),
        ("cache-stats", "print the daemon's /cache/stats document"),
    ):
        clsub.add_parser(probe, help=description)
    client.set_defaults(handler=_cmd_client, needs_spec=False)

    wcet = sub.add_parser("wcet", help="static + measured WCETs")
    wcet.add_argument("spec")
    wcet.add_argument("--backlog", type=int, default=4,
                      help="max pending-queue length for loop bounds")
    wcet.add_argument("--margin", type=float, default=1.5)
    wcet.add_argument("--seed", type=int, default=0)
    wcet.set_defaults(handler=_cmd_wcet)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    if metrics_out or trace_out or args.command == "profile":
        obs.enable()
    try:
        if not getattr(args, "needs_spec", True):
            return args.handler(args)
        try:
            deployment = load_deployment(args.spec)
        except SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return args.handler(deployment, args)
    except BrokenPipeError:  # e.g. `repro source … | head`
        return 0
    except MiniCError as exc:
        # Front-end failures (lexer/parser/typechecker) are user errors,
        # not crashes: report on stderr, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except PlanError as exc:
        # Malformed fault plans (--inject / faults run --plan) likewise.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Exports go to files (and notes to stderr): stdout is identical
        # with observability on or off — the determinism contract.
        if metrics_out:
            from repro.obs.export import write_metrics_jsonl

            lines = write_metrics_jsonl(metrics_out)
            print(f"wrote {lines} metric lines to {metrics_out}", file=sys.stderr)
        if trace_out:
            from repro.obs.export import write_chrome_trace

            events = write_chrome_trace(trace_out)
            print(f"wrote {events} trace events to {trace_out}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

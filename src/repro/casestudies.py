"""Canonical deployments used across examples, benchmarks, and papers.

Each factory returns a fully configured deployment (client + WCET
model).  They encode the three regimes the paper's narrative covers:

* :func:`fig3_deployment` — the paper's running example (Fig. 3): two
  tasks, one socket, the high-priority job arriving second;
* :func:`robot_deployment` — a µs-granularity ROS2-executor-like robot
  (§1.1's middleware motivation): overheads of a few µs against
  millisecond callbacks — the regime where jitter is negligible (E9);
* :func:`embedded_deployment` — a microcontroller-class sensor node
  (§1.1's deeply-embedded motivation): overheads comparable to the
  callbacks — the regime where overhead-oblivious analysis is unsafe
  (E10);
* :func:`edf_deployment` — the EDF extension's alarm/report node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.timing.wcet import WcetModel

MS = 1_000  # µs per ms in the robot deployment's time base


@dataclass(frozen=True)
class CaseStudy:
    """A named deployment: client, WCET model, and its time unit."""

    name: str
    client: RosslClient
    wcet: WcetModel
    time_unit: str


def fig3_deployment() -> CaseStudy:
    tasks = TaskSystem(
        [
            Task(name="t1", priority=1, wcet=12, type_tag=1),
            Task(name="t2", priority=2, wcet=8, type_tag=2),
        ],
        {"t1": SporadicCurve(200), "t2": SporadicCurve(200)},
    )
    return CaseStudy(
        name="fig3",
        client=RosslClient.make(tasks, [0]),
        wcet=WcetModel(failed_read=3, success_read=5, selection=2,
                       dispatch=2, completion=2, idling=3),
        time_unit="abstract",
    )


def robot_deployment() -> CaseStudy:
    tasks = TaskSystem(
        [
            Task(name="telemetry", priority=1, wcet=3 * MS, type_tag=1),
            Task(name="lidar", priority=2, wcet=8 * MS, type_tag=2),
            Task(name="control", priority=3, wcet=1 * MS, type_tag=3),
            Task(name="estop", priority=4, wcet=200, type_tag=4),
        ],
        {
            "telemetry": SporadicCurve(100 * MS),
            "lidar": SporadicCurve(25 * MS),
            "control": SporadicCurve(10 * MS),
            "estop": LeakyBucketCurve(burst=2, rate_separation=500 * MS),
        },
    )
    return CaseStudy(
        name="robot",
        client=RosslClient.make(tasks, [0, 1, 2, 3]),
        wcet=WcetModel(failed_read=2, success_read=4, selection=2,
                       dispatch=2, completion=2, idling=2),
        time_unit="µs",
    )


def embedded_deployment() -> CaseStudy:
    tasks = TaskSystem(
        [
            Task(name="sample", priority=1, wcet=40, type_tag=1),
            Task(name="radio", priority=2, wcet=25, type_tag=2),
        ],
        {
            "sample": SporadicCurve(1_000),
            "radio": LeakyBucketCurve(burst=4, rate_separation=800),
        },
    )
    return CaseStudy(
        name="embedded",
        client=RosslClient.make(tasks, [0, 1]),
        wcet=WcetModel(failed_read=6, success_read=9, selection=5,
                       dispatch=4, completion=4, idling=5),
        time_unit="cycles",
    )


def edf_deployment() -> CaseStudy:
    tasks = TaskSystem(
        [
            Task(name="alarm", priority=0, wcet=12, type_tag=1, deadline=180),
            Task(name="report", priority=0, wcet=60, type_tag=2, deadline=2700),
        ],
        {"alarm": SporadicCurve(300), "report": SporadicCurve(400)},
    )
    return CaseStudy(
        name="edf-node",
        client=RosslClient.make(tasks, [0], policy="edf"),
        wcet=WcetModel(failed_read=2, success_read=2, selection=1,
                       dispatch=1, completion=1, idling=1),
        time_unit="abstract",
    )


ALL_CASE_STUDIES = (
    fig3_deployment,
    robot_deployment,
    embedded_deployment,
    edf_deployment,
)

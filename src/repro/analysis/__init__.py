"""End-to-end analysis: the executable Thm. 5.1 and experiment harnesses.

* :mod:`~repro.analysis.adequacy` — the timing-correctness pipeline:
  simulate a deployment, check every assumption of Thm. 5.1
  (consistency, WCET respect, arrival-curve conformance), compute the
  analytic bounds ``R_i + J_i``, and verify that every job whose bound
  falls inside the horizon completed within it;
* :mod:`~repro.analysis.campaigns` — randomized campaign and parameter
  sweep drivers;
* :mod:`~repro.analysis.report` — plain-text table rendering shared by
  benchmarks, examples, and EXPERIMENTS.md regeneration.
"""

from repro.analysis.adequacy import (
    TimingCorrectnessReport,
    check_timing_correctness,
    run_adequacy_campaign,
)
from repro.analysis.campaigns import CampaignResult, sweep
from repro.analysis.report import format_table

__all__ = [
    "CampaignResult",
    "TimingCorrectnessReport",
    "check_timing_correctness",
    "format_table",
    "run_adequacy_campaign",
    "sweep",
]

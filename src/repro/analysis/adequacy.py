"""Timing correctness, end to end: the executable Thm. 5.1.

The theorem: for a client with arrival curves ``α_i``, basic-action
WCETs, and callback WCETs ``C_i``, any execution whose timed trace
respects the WCETs and is consistent with an arrival sequence bounded by
the curves satisfies — for every job of task ``τ_i`` with
``t_arr + R_i + J_i < t_hrzn`` —

    ``∃k. tr[k] = M_Completion j ∧ ts[k] ≤ t_arr + R_i + J_i``.

:func:`check_timing_correctness` verifies exactly this statement on one
simulated run, after first re-checking every assumption with the
independent checkers (so a buggy simulator cannot vacuously pass).
:func:`run_adequacy_campaign` repeats it over randomized workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro import obs
from repro.analysis.report import format_elapsed, format_table
from repro.engine import SchedulerEngine, as_engine
from repro.rossl.client import RosslClient
from repro.rta.curves import check_curve_respected, memo_cache_clear
from repro.rta.npfp import AnalysisResult, analyse
from repro.sim.simulator import (
    DurationPolicy,
    SimulationResult,
    UniformDurations,
    WcetDurations,
    simulate,
)
from repro.sim.workloads import generate_arrivals
from repro.timing.arrivals import ArrivalSequence
from repro.timing.timed_trace import check_consistency, job_arrival_times
from repro.timing.wcet import WcetModel, check_wcet_respected


@dataclass(frozen=True)
class BoundViolation:
    """A job that missed its analytic response-time bound."""

    task: str
    arrival: int
    bound: int
    completion: int | None  # None: never completed within the horizon

    def __str__(self) -> str:
        done = "never" if self.completion is None else str(self.completion)
        return (
            f"task {self.task}: arrived {self.arrival}, bound "
            f"{self.arrival + self.bound}, completed {done}"
        )


@dataclass
class TimingCorrectnessReport:
    """Outcome of checking Thm. 5.1 on one or more runs."""

    analysis: AnalysisResult
    jobs_checked: int = 0
    jobs_beyond_horizon: int = 0
    runs: int = 0
    observed_worst: dict[str, int] = field(default_factory=dict)
    violations: list[BoundViolation] = field(default_factory=list)
    #: campaign wall clock, read from the ``campaign.adequacy`` span —
    #: not part of the determinism contract (never compared).
    elapsed_seconds: float | None = field(default=None, compare=False)
    #: static-analysis caveats (LB002/CF002 lines from ``--lint``): loops
    #: the cost pass could not bound, so the WCET inputs rest on the
    #: spec's declared values alone.  Presentation-only, never compared.
    static_warnings: tuple[str, ...] = field(default=(), compare=False)
    #: shards the parallel runner lost to worker failures (timeouts,
    #: crashes) past the retry budget — their runs are simply missing
    #: from the tallies.  Never compared: jobs=1 trivially has none.
    shard_failures: tuple = field(default=(), compare=False)

    @property
    def degraded(self) -> bool:
        """Whether worker failures left this report partial."""
        return bool(self.shard_failures)

    @property
    def ok(self) -> bool:
        return not self.violations

    def tightness(self, task_name: str) -> float | None:
        """observed worst response / analytic bound (None if no job ran)."""
        if task_name not in self.observed_worst:
            return None
        return self.observed_worst[task_name] / self.analysis.response_time_bound(
            task_name
        )

    def table(self, show_elapsed: bool = False) -> str:
        rows = []
        for task in self.analysis.tasks:
            name = task.name
            bound = (
                self.analysis.response_time_bound(name)
                if self.analysis.bounds[name].schedulable
                else None
            )
            observed = self.observed_worst.get(name)
            ratio = self.tightness(name) if bound else None
            rows.append((name, task.wcet, task.priority, bound, observed, ratio))
        text = format_table(
            ["task", "C_i", "prio", "bound R_i+J_i", "observed worst", "ratio"],
            rows,
            title=(
                f"Timing correctness over {self.runs} run(s): "
                f"{self.jobs_checked} jobs checked, "
                f"{self.jobs_beyond_horizon} beyond horizon, "
                f"{len(self.violations)} violations"
            ),
        )
        if self.static_warnings:
            text += "\nstatic-analysis caveats:"
            for line in self.static_warnings:
                text += f"\n  {line}"
        if self.shard_failures:
            text += (
                f"\nDEGRADED: {len(self.shard_failures)} shard(s) lost to "
                "worker failures; their runs are missing from the tallies:"
            )
            for failure in self.shard_failures:
                text += f"\n  {failure}"
        if show_elapsed and self.elapsed_seconds is not None:
            text += "\n" + format_elapsed(self.elapsed_seconds)
        return text

    def to_json(self) -> dict:
        """A deterministic JSON form of the report (no wall-clock, no
        machine detail) — warm cache reruns must byte-match cold ones."""
        bounds = {}
        for task in self.analysis.tasks:
            name = task.name
            bounds[name] = (
                self.analysis.response_time_bound(name)
                if self.analysis.bounds[name].schedulable
                else None
            )
        return {
            "runs": self.runs,
            "jobs_checked": self.jobs_checked,
            "jobs_beyond_horizon": self.jobs_beyond_horizon,
            "ok": self.ok,
            "degraded": self.degraded,
            "bounds": bounds,
            "observed_worst": dict(sorted(self.observed_worst.items())),
            "violations": [
                [v.task, v.arrival, v.bound, v.completion]
                for v in self.violations
            ],
            "shard_failures": [str(f) for f in self.shard_failures],
            "static_warnings": list(self.static_warnings),
        }


def check_timing_correctness(
    result: SimulationResult,
    analysis: AnalysisResult,
    report: TimingCorrectnessReport | None = None,
) -> TimingCorrectnessReport:
    """Check Thm. 5.1 on one simulated run (and its assumptions)."""
    client = result.client
    timed = result.timed_trace
    # Re-verify the theorem's hypotheses with the independent checkers.
    check_consistency(timed, result.arrivals)
    check_wcet_respected(timed, client.tasks, result.wcet)
    for task in client.tasks:
        times = [a.time for a in result.arrivals.of_task(client.tasks, task.name)]
        check_curve_respected(times, client.tasks.arrival_curve(task.name))

    if report is None:
        report = TimingCorrectnessReport(analysis=analysis)
    report.runs += 1
    horizon = timed.horizon
    completions = timed.completions()
    arrival_of = job_arrival_times(timed, result.arrivals)

    for job, t_arr in arrival_of.items():
        task = client.tasks.msg_to_task(job.data)
        if not analysis.bounds[task.name].schedulable:
            continue
        bound = analysis.response_time_bound(task.name)
        deadline = t_arr + bound
        if deadline >= horizon:
            report.jobs_beyond_horizon += 1
            continue
        report.jobs_checked += 1
        done = completions.get(job)
        if done is None or done > deadline:
            report.violations.append(
                BoundViolation(task.name, t_arr, bound, done)
            )
        if done is not None:
            response = done - t_arr
            previous = report.observed_worst.get(task.name, 0)
            report.observed_worst[task.name] = max(previous, response)
    # Arrivals never read at all: if their deadline fell inside the
    # horizon, the theorem is violated (the scheduler starved them).
    # Unread arrivals are the per-socket FIFO suffixes beyond the jobs
    # actually read on that socket.
    if len(arrival_of) < len(result.arrivals):
        for sock in client.sockets:
            queue = result.arrivals.on_socket(sock)
            read_on_sock = sum(
                1
                for m in timed.trace
                if type(m).__name__ == "MReadE"
                and m.job is not None
                and m.sock == sock
            )
            for arrival in queue[read_on_sock:]:
                task = client.tasks.msg_to_task(arrival.data)
                if not analysis.bounds[task.name].schedulable:
                    continue
                bound = analysis.response_time_bound(task.name)
                if arrival.time + bound < horizon:
                    report.violations.append(
                        BoundViolation(task.name, arrival.time, bound, None)
                    )
                else:
                    report.jobs_beyond_horizon += 1
    return report


@dataclass(frozen=True)
class RunOutcome:
    """The check results of one campaign run, in a mergeable (and
    picklable) form — the unit of work of the parallel campaign runner.

    Merging outcomes in ``run_index`` order reconstructs exactly the
    report a serial campaign would have produced, which is what makes
    ``jobs=N`` bit-identical to ``jobs=1``.
    """

    run_index: int
    jobs_checked: int
    jobs_beyond_horizon: int
    observed_worst: tuple[tuple[str, int], ...]
    violations: tuple[BoundViolation, ...]


def adequacy_run(
    client: RosslClient,
    wcet: WcetModel,
    analysis: AnalysisResult,
    horizon: int,
    runs: int,
    index: int,
    seed_root: int,
    intensity: float,
    adversarial_fraction: float,
    engine: str | SchedulerEngine = "python",
) -> RunOutcome:
    """One campaign run, fully determined by ``(seed_root, index)``.

    The per-run RNG is derived as ``seed_root + index`` so runs are
    independent of execution order and of each other — the property the
    process-pool runner relies on.  The first ``adversarial_fraction``
    of the index space uses always-WCET timing; the rest draws durations
    uniformly.
    """
    rng = random.Random(seed_root + index)
    arrivals = generate_arrivals(
        client,
        horizon=max(1, horizon // 2),
        rng=rng,
        intensity=intensity,
    )
    policy: DurationPolicy
    if index < runs * adversarial_fraction:
        policy = WcetDurations()
    else:
        policy = UniformDurations(rng)
    result = simulate(
        client, arrivals, wcet, horizon, durations=policy, engine=engine
    )
    local = TimingCorrectnessReport(analysis=analysis)
    check_timing_correctness(result, analysis, local)
    return RunOutcome(
        run_index=index,
        jobs_checked=local.jobs_checked,
        jobs_beyond_horizon=local.jobs_beyond_horizon,
        observed_worst=tuple(sorted(local.observed_worst.items())),
        violations=tuple(local.violations),
    )


def merge_outcomes(
    analysis: AnalysisResult, outcomes: Iterable[RunOutcome]
) -> TimingCorrectnessReport:
    """Fold per-run outcomes (in run-index order) into one report."""
    report = TimingCorrectnessReport(analysis=analysis)
    for outcome in sorted(outcomes, key=lambda o: o.run_index):
        report.runs += 1
        report.jobs_checked += outcome.jobs_checked
        report.jobs_beyond_horizon += outcome.jobs_beyond_horizon
        for task_name, worst in outcome.observed_worst:
            previous = report.observed_worst.get(task_name, 0)
            report.observed_worst[task_name] = max(previous, worst)
        report.violations.extend(outcome.violations)
    return report


def run_adequacy_campaign(
    client: RosslClient,
    wcet: WcetModel,
    horizon: int,
    runs: int,
    seed: int = 0,
    intensity: float = 1.0,
    adversarial_fraction: float = 0.5,
    analysis_horizon: int = 1_000_000,
    engine: str | SchedulerEngine = "python",
    jobs: int = 1,
    worker_timeout: float | None = None,
    worker_retries: int = 1,
    worker_fault=None,
    cache=None,
    kernel: bool | None = None,
    pool=None,
    fabric=None,
) -> TimingCorrectnessReport:
    """Randomized campaign: ``runs`` simulations, all checked.

    A fraction of the runs uses adversarial always-WCET timing; the rest
    draws durations uniformly.  Raises if the system is unschedulable
    (campaigns are for validating bounds, not for overload studies).

    ``engine`` selects the execution backend (registry name or built
    engine); ``jobs > 1`` fans the runs out over a process pool
    (:mod:`repro.analysis.parallel`) — results are bit-identical to the
    serial campaign because every run's randomness derives from
    ``seed + run_index`` alone.  Worker failures past the retry budget
    (``worker_timeout``/``worker_retries``; ``worker_fault`` injects
    them deterministically, see
    :class:`~repro.analysis.parallel.WorkerFault`) degrade the report —
    the lost shards land in :attr:`TimingCorrectnessReport.shard_failures`
    instead of killing the campaign.

    ``cache`` (a :class:`repro.cache.ResultStore`) makes the campaign
    *incremental*: the analysis and every run already answered by the
    store are skipped and only the missing runs execute — merged reports
    stay bit-identical to cold ones because :class:`RunOutcome` is the
    exact unit the serial runner produces.  The cache is bypassed
    entirely when a ``worker_fault`` is injected, and an engine the
    fingerprint layer rejects (e.g. a fault-wrapped one) disables
    caching for the whole campaign — a cached clean result can never
    mask an injected defect.

    ``kernel`` selects the RTA evaluation path (see
    :func:`repro.rta.npfp.analyse`); reports are byte-identical either
    way.

    ``pool`` (a :class:`repro.serve.pool.ResidentPool`) hands the runs
    to externally owned resident workers instead of forking a fresh
    pool — same outcomes, no per-campaign spin-up.  Ignored when a
    ``worker_fault`` is injected (fault injection targets fork-pool
    rounds).

    ``fabric`` (a :class:`repro.dist.FabricConfig`) runs the missing
    runs through the distributed work-stealing fabric instead: workers
    claim fingerprints from the store via lease files and the campaign
    is resumable after any worker (or driver) death — see
    ``docs/distributed.md``.  Requires ``cache`` (the store *is* the
    coordination substrate) and fingerprintable inputs; combines with
    ``pool`` for warm resident execution.  Report bytes stay identical
    to the serial campaign for every worker count and interleaving.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if fabric is not None:
        if worker_fault is not None:
            raise ValueError(
                "fabric campaigns cannot inject worker faults: a "
                "fault-wrapped pipeline is uncacheable by construction "
                "and the fabric coordinates through the cache"
            )
        if cache is None:
            raise ValueError(
                "run_adequacy_campaign(fabric=...) needs cache=: the "
                "shared store is the fabric's coordination substrate"
            )
    # Campaign boundary: reset the in-process step cache so within-run
    # timing is independent of what ran earlier in this process.
    memo_cache_clear()
    # Safety rail: deterministic fault injection must observe the real
    # (faulty) pipeline, never a cached clean result.
    store = None if worker_fault is not None else cache
    shard_failures: tuple = ()
    with obs.span("campaign.adequacy", runs=runs, jobs=jobs) as sp:
        if store is not None:
            from repro.cache import cached_analyse

            analysis = cached_analyse(
                client, wcet, analysis_horizon, store, kernel=kernel
            )
        else:
            analysis = analyse(client, wcet, analysis_horizon, kernel=kernel)
        if not analysis.schedulable:
            raise ValueError("campaigns need a schedulable system")
        keys: list[str] | None = None
        cached_outcomes: list[RunOutcome] = []
        missing = list(range(runs))
        if store is not None:
            from repro.cache import (
                UnfingerprintableError,
                campaign_run_key,
                outcome_from_payload,
            )

            try:
                keys = [
                    campaign_run_key(
                        client, wcet, engine,
                        horizon=horizon, runs=runs, seed_root=seed,
                        intensity=intensity,
                        adversarial_fraction=adversarial_fraction,
                        analysis_horizon=analysis_horizon, index=index,
                    )
                    for index in range(runs)
                ]
            except UnfingerprintableError:
                if fabric is not None:
                    raise ValueError(
                        "fabric campaigns need fingerprintable inputs: "
                        "the distributed fabric names work by content "
                        "fingerprint"
                    )
                keys = None
            if keys is not None:
                missing = []
                for index in range(runs):
                    payload = store.get(keys[index])
                    outcome = (
                        outcome_from_payload(payload)
                        if payload is not None
                        else None
                    )
                    if outcome is not None and outcome.run_index == index:
                        cached_outcomes.append(outcome)
                    else:
                        missing.append(index)
        fresh: list[RunOutcome] = []
        fabric_ran = False
        use_pool = pool is not None and worker_fault is None
        if missing and fabric is not None:
            from repro.dist.fabric import run_fabric_campaign

            fresh, shard_failures = run_fabric_campaign(
                client, wcet, analysis, horizon, runs,
                seed_root=seed, intensity=intensity,
                adversarial_fraction=adversarial_fraction,
                engine=engine, store=store, keys=keys,
                indices=missing, config=fabric,
                pool=pool if use_pool else None,
            )
            fabric_ran = True
        elif missing and (jobs > 1 or use_pool):
            from repro.analysis.parallel import run_campaign_parallel

            fresh, shard_failures = run_campaign_parallel(
                client, wcet, analysis, horizon, runs,
                seed_root=seed, intensity=intensity,
                adversarial_fraction=adversarial_fraction,
                engine=engine, jobs=jobs,
                worker_timeout=worker_timeout,
                worker_retries=worker_retries,
                worker_fault=worker_fault,
                indices=missing,
                pool=pool if use_pool else None,
            )
        elif missing:
            backend = as_engine(engine, client)
            fresh = [
                adequacy_run(
                    client, wcet, analysis, horizon, runs, index,
                    seed_root=seed, intensity=intensity,
                    adversarial_fraction=adversarial_fraction, engine=backend,
                )
                for index in missing
            ]
        if store is not None and keys is not None and not fabric_ran:
            from repro.cache import outcome_payload

            for outcome in fresh:
                store.put(keys[outcome.run_index], outcome_payload(outcome))
        report = merge_outcomes(analysis, cached_outcomes + fresh)
        report.shard_failures = shard_failures
    obs.inc("campaign.runs_completed", report.runs)
    report.elapsed_seconds = sp.elapsed_seconds
    return report

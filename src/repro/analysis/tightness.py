"""Tightness study: how close do observed responses come to the bounds?

A sound bound is easy to state (infinity qualifies); the paper's analysis
is useful because its bounds are *tight enough to act on*.  This module
quantifies that on this reproduction: across randomized campaigns it
collects the ratio ``observed response / analytic bound`` per job and
reports distribution statistics per task.  Ratios must never exceed 1
(soundness); the spread below 1 measures conservatism — dominated by the
deliberate worst-case assumptions (WCET timing, burst arrivals, the
conservative SBF carry-in; see DESIGN.md §3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.rossl.client import RosslClient
from repro.rta.npfp import analyse
from repro.sim.simulator import UniformDurations, WcetDurations, simulate
from repro.sim.workloads import generate_arrivals
from repro.timing.wcet import WcetModel


@dataclass
class TightnessStudy:
    """Collected response/bound ratios per task."""

    ratios: dict[str, list[float]] = field(default_factory=dict)
    jobs: int = 0

    def add(self, task: str, ratio: float) -> None:
        self.ratios.setdefault(task, []).append(ratio)
        self.jobs += 1

    def percentile(self, task: str, q: float) -> float | None:
        values = sorted(self.ratios.get(task, []))
        if not values:
            return None
        index = min(len(values) - 1, int(q * (len(values) - 1) + 0.5))
        return values[index]

    @property
    def worst(self) -> float:
        return max((max(v) for v in self.ratios.values() if v), default=0.0)

    def table(self) -> str:
        rows = []
        for task in sorted(self.ratios):
            values = self.ratios[task]
            rows.append(
                (
                    task,
                    len(values),
                    f"{self.percentile(task, 0.5):.3f}",
                    f"{self.percentile(task, 0.9):.3f}",
                    f"{max(values):.3f}",
                )
            )
        return format_table(
            ["task", "jobs", "median ratio", "p90 ratio", "max ratio"],
            rows,
            title=f"observed response / analytic bound over {self.jobs} jobs",
        )


def run_tightness_study(
    client: RosslClient,
    wcet: WcetModel,
    horizon: int,
    runs: int,
    seed: int = 0,
    intensity: float = 1.2,
    adversarial_fraction: float = 0.5,
) -> TightnessStudy:
    """Randomized campaign collecting response/bound ratios.

    Raises if any ratio exceeds 1 — tightness reporting presupposes
    soundness.
    """
    analysis = analyse(client, wcet)
    if not analysis.schedulable:
        raise ValueError("tightness studies need a schedulable system")
    study = TightnessStudy()
    rng = random.Random(seed)
    for index in range(runs):
        arrivals = generate_arrivals(
            client, horizon=max(1, horizon // 2), rng=rng, intensity=intensity
        )
        policy = (
            WcetDurations()
            if index < runs * adversarial_fraction
            else UniformDurations(rng)
        )
        result = simulate(client, arrivals, wcet, horizon, durations=policy)
        for job, (_, _, response) in result.response_times().items():
            name = client.tasks.msg_to_task(job.data).name
            bound = analysis.response_time_bound(name)
            ratio = response / bound
            if ratio > 1.0:
                raise AssertionError(
                    f"soundness violation: {job} of {name} at ratio {ratio:.3f}"
                )
            study.add(name, ratio)
    return study

"""Parameter sweeps over deployments.

:func:`sweep` evaluates a metric across a parameter range — used by the
ablation benchmarks (response-time bound vs. number of sockets, vs. WCET
scaling, vs. workload burstiness) and by EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.analysis.report import format_table

P = TypeVar("P")


@dataclass(frozen=True)
class CampaignResult:
    """Rows of (parameter value, metric values) for one sweep."""

    parameter: str
    metrics: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def table(self, title: str | None = None) -> str:
        return format_table(
            [self.parameter, *self.metrics], self.rows, title=title
        )

    def column(self, metric: str) -> list[object]:
        try:
            index = 1 + self.metrics.index(metric)
        except ValueError:
            available = ", ".join(repr(name) for name in self.metrics)
            raise KeyError(
                f"unknown metric {metric!r}; available metrics: {available}"
            ) from None
        return [row[index] for row in self.rows]

    def parameters(self) -> list[object]:
        return [row[0] for row in self.rows]


def sweep(
    parameter: str,
    values: Iterable[P],
    metrics: Sequence[str],
    evaluate: Callable[[P], Sequence[object]],
    jobs: int = 1,
) -> CampaignResult:
    """Evaluate ``evaluate(value)`` (one cell per metric) per value.

    ``jobs > 1`` evaluates the parameter values across a process pool
    (:func:`repro.analysis.parallel.parallel_sweep`); rows come back in
    input order either way.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if jobs > 1:
        from repro.analysis.parallel import parallel_sweep

        return parallel_sweep(parameter, values, metrics, evaluate, jobs=jobs)
    rows = []
    metric_names = tuple(metrics)
    for value in values:
        cells = tuple(evaluate(value))
        if len(cells) != len(metric_names):
            raise ValueError(
                f"evaluate returned {len(cells)} cells for {len(metric_names)} metrics"
            )
        rows.append((value, *cells))
    return CampaignResult(parameter, metric_names, tuple(rows))

"""Parameter sweeps over deployments.

:func:`sweep` evaluates a metric across a parameter range — used by the
ablation benchmarks (response-time bound vs. number of sockets, vs. WCET
scaling, vs. workload burstiness) and by EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from repro import obs
from repro.analysis.report import format_elapsed, format_table

P = TypeVar("P")


@dataclass(frozen=True)
class CampaignResult:
    """Rows of (parameter value, metric values) for one sweep.

    ``elapsed_seconds`` is the sweep's wall clock, read from its span
    (:mod:`repro.obs.spans`) — excluded from equality so serial and
    parallel sweeps still compare bit-identical on their data.
    """

    parameter: str
    metrics: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    elapsed_seconds: float | None = field(default=None, compare=False)

    def table(self, title: str | None = None, show_elapsed: bool = False) -> str:
        text = format_table(
            [self.parameter, *self.metrics], self.rows, title=title
        )
        if show_elapsed and self.elapsed_seconds is not None:
            text += "\n" + format_elapsed(self.elapsed_seconds)
        return text

    def column(self, metric: str) -> list[object]:
        try:
            index = 1 + self.metrics.index(metric)
        except ValueError:
            available = ", ".join(repr(name) for name in self.metrics)
            raise KeyError(
                f"unknown metric {metric!r}; available metrics: {available}"
            ) from None
        return [row[index] for row in self.rows]

    def parameters(self) -> list[object]:
        return [row[0] for row in self.rows]


def sweep(
    parameter: str,
    values: Iterable[P],
    metrics: Sequence[str],
    evaluate: Callable[[P], Sequence[object]],
    jobs: int = 1,
) -> CampaignResult:
    """Evaluate ``evaluate(value)`` (one cell per metric) per value.

    ``jobs > 1`` evaluates the parameter values across a process pool
    (:func:`repro.analysis.parallel.parallel_sweep`); rows come back in
    input order either way.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if jobs > 1:
        from repro.analysis.parallel import parallel_sweep

        return parallel_sweep(parameter, values, metrics, evaluate, jobs=jobs)
    rows = []
    metric_names = tuple(metrics)
    with obs.span("sweep.serial", parameter=parameter) as sp:
        for value in values:
            cells = tuple(evaluate(value))
            if len(cells) != len(metric_names):
                raise ValueError(
                    f"evaluate returned {len(cells)} cells for "
                    f"{len(metric_names)} metrics"
                )
            rows.append((value, *cells))
    return CampaignResult(
        parameter, metric_names, tuple(rows), elapsed_seconds=sp.elapsed_seconds
    )


def analysis_sweep(
    parameter: str,
    values: Iterable[P],
    metrics: Sequence[str],
    deploy: Callable[[P], tuple],
    summarize: Callable[[P, object], Sequence[object]],
    jobs: int = 1,
    horizon: int = 1_000_000,
    kernel: bool | None = None,
) -> CampaignResult:
    """An RTA sweep: one analysis per parameter value, batched.

    ``deploy(value)`` maps a parameter value to ``(client, wcet)``;
    ``summarize(value, analysis)`` turns the
    :class:`~repro.rta.npfp.AnalysisResult` into one cell per metric.

    Serially the cells go through
    :func:`repro.rta.npfp.analyse_batch`, so compiled step tables and
    pooled supplies are shared across all cells even when the sweep is
    wider than the steady-state pool limits.  With ``jobs > 1`` the
    cells fan out over the process pool; the parent precompiles every
    cell's tables first (:func:`repro.rta.kernel.precompile_release_tables`)
    so forked workers inherit a warm table cache.  Rows are identical
    either way.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    from repro.rta import kernel as step_kernel

    value_list = list(values)
    deployments = [deploy(value) for value in value_list]
    use_kernel = step_kernel.kernel_enabled(kernel)
    if jobs > 1:
        from repro.analysis.parallel import parallel_sweep
        from repro.rta.npfp import analyse

        warm_init = None
        if use_kernel:
            # Compile every cell's tables in the parent: fork workers
            # inherit the warm cache, so no worker compiles anything.
            # The same warm-up doubles as the per-worker initializer
            # for pools that do not inherit parent memory.
            def warm_init() -> None:
                for client, wcet in deployments:
                    step_kernel.precompile_release_tables(client, wcet)

            warm_init()

        def evaluate(value: P) -> Sequence[object]:
            client, wcet = deploy(value)
            return summarize(
                value, analyse(client, wcet, horizon, kernel=kernel)
            )

        return parallel_sweep(
            parameter, value_list, metrics, evaluate, jobs=jobs,
            warm_init=warm_init,
        )
    from repro.rta.npfp import analyse_batch

    metric_names = tuple(metrics)
    with obs.span("sweep.analysis", parameter=parameter) as sp:
        analyses = analyse_batch(deployments, horizon, kernel=kernel)
        rows = []
        for value, analysis in zip(value_list, analyses):
            cells = tuple(summarize(value, analysis))
            if len(cells) != len(metric_names):
                raise ValueError(
                    f"summarize returned {len(cells)} cells for "
                    f"{len(metric_names)} metrics"
                )
            rows.append((value, *cells))
    return CampaignResult(
        parameter, metric_names, tuple(rows), elapsed_seconds=sp.elapsed_seconds
    )

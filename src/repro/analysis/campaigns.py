"""Parameter sweeps over deployments.

:func:`sweep` evaluates a metric across a parameter range — used by the
ablation benchmarks (response-time bound vs. number of sockets, vs. WCET
scaling, vs. workload burstiness) and by EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from repro import obs
from repro.analysis.report import format_elapsed, format_table

P = TypeVar("P")


@dataclass(frozen=True)
class CampaignResult:
    """Rows of (parameter value, metric values) for one sweep.

    ``elapsed_seconds`` is the sweep's wall clock, read from its span
    (:mod:`repro.obs.spans`) — excluded from equality so serial and
    parallel sweeps still compare bit-identical on their data.
    """

    parameter: str
    metrics: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    elapsed_seconds: float | None = field(default=None, compare=False)

    def table(self, title: str | None = None, show_elapsed: bool = False) -> str:
        text = format_table(
            [self.parameter, *self.metrics], self.rows, title=title
        )
        if show_elapsed and self.elapsed_seconds is not None:
            text += "\n" + format_elapsed(self.elapsed_seconds)
        return text

    def column(self, metric: str) -> list[object]:
        try:
            index = 1 + self.metrics.index(metric)
        except ValueError:
            available = ", ".join(repr(name) for name in self.metrics)
            raise KeyError(
                f"unknown metric {metric!r}; available metrics: {available}"
            ) from None
        return [row[index] for row in self.rows]

    def parameters(self) -> list[object]:
        return [row[0] for row in self.rows]


def sweep(
    parameter: str,
    values: Iterable[P],
    metrics: Sequence[str],
    evaluate: Callable[[P], Sequence[object]],
    jobs: int = 1,
) -> CampaignResult:
    """Evaluate ``evaluate(value)`` (one cell per metric) per value.

    ``jobs > 1`` evaluates the parameter values across a process pool
    (:func:`repro.analysis.parallel.parallel_sweep`); rows come back in
    input order either way.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if jobs > 1:
        from repro.analysis.parallel import parallel_sweep

        return parallel_sweep(parameter, values, metrics, evaluate, jobs=jobs)
    rows = []
    metric_names = tuple(metrics)
    with obs.span("sweep.serial", parameter=parameter) as sp:
        for value in values:
            cells = tuple(evaluate(value))
            if len(cells) != len(metric_names):
                raise ValueError(
                    f"evaluate returned {len(cells)} cells for "
                    f"{len(metric_names)} metrics"
                )
            rows.append((value, *cells))
    return CampaignResult(
        parameter, metric_names, tuple(rows), elapsed_seconds=sp.elapsed_seconds
    )

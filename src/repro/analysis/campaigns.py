"""Parameter sweeps over deployments.

:func:`sweep` evaluates a metric across a parameter range — used by the
ablation benchmarks (response-time bound vs. number of sockets, vs. WCET
scaling, vs. workload burstiness) and by EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.analysis.report import format_table

P = TypeVar("P")


@dataclass(frozen=True)
class CampaignResult:
    """Rows of (parameter value, metric values) for one sweep."""

    parameter: str
    metrics: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def table(self, title: str | None = None) -> str:
        return format_table(
            [self.parameter, *self.metrics], self.rows, title=title
        )

    def column(self, metric: str) -> list[object]:
        index = 1 + self.metrics.index(metric)
        return [row[index] for row in self.rows]

    def parameters(self) -> list[object]:
        return [row[0] for row in self.rows]


def sweep(
    parameter: str,
    values: Iterable[P],
    metrics: Sequence[str],
    evaluate: Callable[[P], Sequence[object]],
) -> CampaignResult:
    """Evaluate ``evaluate(value)`` (one cell per metric) per value."""
    rows = []
    metric_names = tuple(metrics)
    for value in values:
        cells = tuple(evaluate(value))
        if len(cells) != len(metric_names):
            raise ValueError(
                f"evaluate returned {len(cells)} cells for {len(metric_names)} metrics"
            )
        rows.append((value, *cells))
    return CampaignResult(parameter, metric_names, tuple(rows))

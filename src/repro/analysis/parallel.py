"""Parallel campaign execution: adequacy runs and sweeps on a pool.

The adequacy argument (Thm. 5.1's empirical analog, E8/E15) gets
stronger with every run we can afford, and campaign runs are
embarrassingly parallel: each is fully determined by ``(seed_root +
run_index)`` (see :func:`repro.analysis.adequacy.adequacy_run`), so the
pool can execute them in any order and the merged report is
*bit-identical* to a serial campaign.

Design points:

* **fork-based workers** — the pool uses the ``fork`` start method so
  workers inherit the deployment; platforms without ``fork`` (and
  ``jobs=1``) fall back to serial execution with the same results;
* **worker-side engine instantiation** — each worker builds its engine
  (parse/typecheck/compile of the Rössl program) exactly once in its
  initializer, not once per run;
* **chunked submission** — run indices are submitted in contiguous
  chunks (a few per worker) to amortize task dispatch over the pool.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro import obs
from repro.analysis.adequacy import RunOutcome, adequacy_run
from repro.analysis.campaigns import CampaignResult
from repro.engine import SchedulerEngine, create_engine, resolve_engine_name
from repro.rossl.client import RosslClient
from repro.rta.npfp import AnalysisResult
from repro.timing.wcet import WcetModel

T = TypeVar("T")
R = TypeVar("R")

#: chunks submitted per worker — small enough to balance uneven run
#: costs, large enough to amortize dispatch.
CHUNKS_PER_JOB = 4


def fork_available() -> bool:
    """Whether the platform supports fork-based worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def split_chunks(items: Sequence[T], jobs: int) -> list[Sequence[T]]:
    """Contiguous chunks of ``items``, about ``CHUNKS_PER_JOB`` per job."""
    if not items:
        return []
    target = max(1, jobs) * CHUNKS_PER_JOB
    size = max(1, (len(items) + target - 1) // target)
    return [items[start:start + size] for start in range(0, len(items), size)]


def pool_map_chunks(
    chunks: Sequence[T],
    chunk_fn: Callable[[T], R],
    initializer: Callable[..., None],
    initargs: tuple,
    jobs: int,
) -> list[R] | None:
    """Map ``chunk_fn`` over ``chunks`` on a fork-based process pool,
    preserving order.  Returns ``None`` when the platform lacks fork —
    callers run their serial path instead (same results, one process).
    """
    if not fork_available():
        return None
    context = multiprocessing.get_context("fork")
    workers = max(1, min(jobs, len(chunks)))
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(chunk_fn, chunks))


# -- worker-side observability ---------------------------------------------
#
# Fork copies the parent's registry into every worker, so each worker
# resets its (copied) registry in the initializer — otherwise the
# parent's pre-fork counts would be merged back a second time.  Each
# chunk ships the *delta* between its start and end snapshots, and the
# first chunk a worker executes additionally ships the initializer's
# snapshot (engine construction — the fork-side setup cost).


def init_worker_obs(parent_enabled: bool) -> None:
    """Reset the forked registry and mirror the parent's on/off switch."""
    obs.reset()
    obs.set_enabled(parent_enabled)


def take_init_snapshot() -> obs.MetricsSnapshot | None:
    """Snapshot the initializer's work (call at the end of a worker
    initializer); ``None`` when observability is off."""
    return obs.snapshot() if obs.enabled() else None


def merge_worker_snapshots(
    snapshots: Iterable[obs.MetricsSnapshot | None],
) -> None:
    """Fold worker deltas back into the parent registry, in order."""
    for snap in snapshots:
        if snap is not None:
            obs.merge_snapshot(snap)


# -- adequacy campaigns ----------------------------------------------------

_WORKER: dict = {}


def _init_campaign_worker(
    client: RosslClient,
    wcet: WcetModel,
    analysis: AnalysisResult,
    horizon: int,
    runs: int,
    seed_root: int,
    intensity: float,
    adversarial_fraction: float,
    engine_name: str,
    obs_enabled: bool = False,
) -> None:
    init_worker_obs(obs_enabled)
    _WORKER["campaign"] = (
        client, wcet, analysis, horizon, runs,
        seed_root, intensity, adversarial_fraction,
    )
    # The expensive part — one engine per worker process, shared by
    # every run that worker executes.
    with obs.span("campaign.worker_init", pid=os.getpid(), engine=engine_name):
        _WORKER["engine"] = create_engine(engine_name, client)
    _WORKER["init_snapshot"] = take_init_snapshot()


def _campaign_chunk(
    indices: Sequence[int],
) -> tuple[list[RunOutcome], obs.MetricsSnapshot | None]:
    (client, wcet, analysis, horizon, runs,
     seed_root, intensity, adversarial_fraction) = _WORKER["campaign"]
    engine = _WORKER["engine"]
    before = obs.snapshot() if obs.enabled() else None
    with obs.span("campaign.chunk", pid=os.getpid(), runs=len(indices)):
        outcomes = [
            adequacy_run(
                client, wcet, analysis, horizon, runs, index,
                seed_root=seed_root, intensity=intensity,
                adversarial_fraction=adversarial_fraction, engine=engine,
            )
            for index in indices
        ]
    if before is None:
        return outcomes, None
    delta = obs.snapshot().diff(before)
    init_snap = _WORKER.pop("init_snapshot", None)
    if init_snap is not None:
        delta = init_snap.merge(delta)
    return outcomes, delta


def run_campaign_parallel(
    client: RosslClient,
    wcet: WcetModel,
    analysis: AnalysisResult,
    horizon: int,
    runs: int,
    seed_root: int = 0,
    intensity: float = 1.0,
    adversarial_fraction: float = 0.5,
    engine: str | SchedulerEngine = "python",
    jobs: int = 2,
) -> list[RunOutcome]:
    """Execute ``runs`` adequacy runs across ``jobs`` workers.

    Returns the per-run outcomes (callers merge them with
    :func:`repro.analysis.adequacy.merge_outcomes`).  Falls back to
    serial in-process execution when ``jobs <= 1``, the campaign is
    trivially small, or the platform lacks fork.
    """
    engine_name = resolve_engine_name(
        engine if isinstance(engine, str) else engine.name
    )
    indices = list(range(runs))
    chunks = split_chunks(indices, jobs)
    outcomes: list[RunOutcome] | None = None
    if jobs > 1 and len(chunks) > 1:
        with obs.span("campaign.parallel", jobs=jobs, runs=runs):
            per_chunk = pool_map_chunks(
                chunks,
                _campaign_chunk,
                initializer=_init_campaign_worker,
                initargs=(
                    client, wcet, analysis, horizon, runs,
                    seed_root, intensity, adversarial_fraction, engine_name,
                    obs.enabled(),
                ),
                jobs=jobs,
            )
        if per_chunk is not None:
            merge_worker_snapshots(snap for _, snap in per_chunk)
            outcomes = [
                outcome for chunk, _ in per_chunk for outcome in chunk
            ]
    if outcomes is None:
        backend = create_engine(engine_name, client)
        outcomes = [
            adequacy_run(
                client, wcet, analysis, horizon, runs, index,
                seed_root=seed_root, intensity=intensity,
                adversarial_fraction=adversarial_fraction, engine=backend,
            )
            for index in indices
        ]
    return outcomes


# -- parameter sweeps ------------------------------------------------------


def _init_sweep_worker(
    evaluate: Callable,
    metric_names: tuple[str, ...],
    obs_enabled: bool = False,
) -> None:
    init_worker_obs(obs_enabled)
    _WORKER["sweep"] = (evaluate, metric_names)


def _sweep_chunk(
    values: Sequence,
) -> tuple[list[tuple], obs.MetricsSnapshot | None]:
    evaluate, metric_names = _WORKER["sweep"]
    before = obs.snapshot() if obs.enabled() else None
    rows = []
    with obs.span("sweep.chunk", pid=os.getpid(), values=len(values)):
        for value in values:
            cells = tuple(evaluate(value))
            if len(cells) != len(metric_names):
                raise ValueError(
                    f"evaluate returned {len(cells)} cells for "
                    f"{len(metric_names)} metrics"
                )
            rows.append((value, *cells))
    if before is None:
        return rows, None
    return rows, obs.snapshot().diff(before)


def parallel_sweep(
    parameter: str,
    values: Iterable,
    metrics: Sequence[str],
    evaluate: Callable,
    jobs: int = 2,
) -> CampaignResult:
    """A parameter sweep across a process pool (rows stay in order).

    Each parameter value is evaluated independently, so the sweep
    parallelizes like the campaigns do.  With fork workers, ``evaluate``
    is inherited rather than pickled, so closures work; only the result
    rows must be picklable.  Falls back to serial evaluation when the
    pool is unavailable.
    """
    from repro.analysis.campaigns import sweep

    metric_names = tuple(metrics)
    value_list = list(values)
    chunks = split_chunks(value_list, jobs)
    if jobs > 1 and len(chunks) > 1:
        with obs.span("sweep.parallel", jobs=jobs, values=len(value_list)) as sp:
            per_chunk = pool_map_chunks(
                chunks,
                _sweep_chunk,
                initializer=_init_sweep_worker,
                initargs=(evaluate, metric_names, obs.enabled()),
                jobs=jobs,
            )
        if per_chunk is not None:
            merge_worker_snapshots(snap for _, snap in per_chunk)
            rows = tuple(row for chunk, _ in per_chunk for row in chunk)
            return CampaignResult(
                parameter, metric_names, rows,
                elapsed_seconds=sp.elapsed_seconds,
            )
    return sweep(parameter, value_list, metric_names, evaluate)

"""Parallel campaign execution: adequacy runs and sweeps on a pool.

The adequacy argument (Thm. 5.1's empirical analog, E8/E15) gets
stronger with every run we can afford, and campaign runs are
embarrassingly parallel: each is fully determined by ``(seed_root +
run_index)`` (see :func:`repro.analysis.adequacy.adequacy_run`), so the
pool can execute them in any order and the merged report is
*bit-identical* to a serial campaign.

Design points:

* **fork-based workers** — the pool uses the ``fork`` start method so
  workers inherit the deployment; platforms without ``fork`` (and
  ``jobs=1``) fall back to serial execution with the same results;
* **worker-side engine instantiation** — each worker builds its engine
  (parse/typecheck/compile of the Rössl program) exactly once in its
  initializer, not once per run;
* **chunked submission** — run indices are submitted in contiguous
  chunks (a few per worker) to amortize task dispatch over the pool;
* **failure containment** — a worker that hangs, dies, or raises costs
  its chunk one attempt; the pool is rebuilt and the chunk retried on a
  fresh worker, and a chunk that exhausts its retries becomes a recorded
  :class:`ShardFailure` instead of an exception or a hang.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro import obs
from repro.analysis.adequacy import RunOutcome, adequacy_run
from repro.analysis.campaigns import CampaignResult
from repro.engine import SchedulerEngine, create_engine, resolve_engine_name
from repro.rossl.client import RosslClient
from repro.rta.npfp import AnalysisResult
from repro.timing.wcet import WcetModel

T = TypeVar("T")
R = TypeVar("R")

#: chunks submitted per worker — small enough to balance uneven run
#: costs, large enough to amortize dispatch.
CHUNKS_PER_JOB = 4

#: how long an injected ``hang`` fault sleeps — far beyond any sane
#: per-chunk timeout, so the parent's timeout path is what ends it.
_HANG_SECONDS = 3600.0


def fork_available() -> bool:
    """Whether the platform supports fork-based worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def split_chunks(items: Sequence[T], jobs: int) -> list[Sequence[T]]:
    """Contiguous chunks of ``items``, about ``CHUNKS_PER_JOB`` per job."""
    if not items:
        return []
    target = max(1, jobs) * CHUNKS_PER_JOB
    size = max(1, (len(items) + target - 1) // target)
    return [items[start:start + size] for start in range(0, len(items), size)]


@dataclass(frozen=True)
class WorkerFault:
    """A deterministic failure injected into pool workers (never the
    parent): the worker executing chunk ``chunk_index`` misbehaves
    during the first ``times`` pool rounds.

    ``kind`` is ``"crash"`` (the worker process exits abruptly via
    ``os._exit``, breaking the pool) or ``"hang"`` (the worker sleeps
    past any reasonable timeout).  Used by :mod:`repro.faults` to prove
    the degradation machinery below actually degrades.
    """

    kind: str
    chunk_index: int = 0
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "hang"):
            raise ValueError(f"unknown worker fault kind {self.kind!r}")


@dataclass(frozen=True)
class ShardFailure:
    """One chunk of work that could not be completed.

    ``reason`` is ``"timeout"`` (the chunk exceeded the per-chunk
    timeout), ``"crash"`` (the pool broke while the chunk was claimed
    and unfinished — worker death cannot be attributed more precisely
    than that), ``"error"`` (the chunk function raised), or
    ``"missing"`` (a distributed campaign's round budget ran out before
    the run was computed; see :mod:`repro.dist`).  ``detail`` is a
    stable, machine-free description (no pids, no wall-clock) so reports
    carrying failures stay deterministic.
    """

    chunk_index: int
    attempts: int
    reason: str
    detail: str

    def __str__(self) -> str:
        return (
            f"shard {self.chunk_index}: {self.reason} after "
            f"{self.attempts} attempt(s) — {self.detail}"
        )


@dataclass
class PoolOutcome:
    """What a hardened pool map produced: per-chunk results (``None``
    where the shard ultimately failed) plus the recorded failures."""

    results: list
    failures: tuple[ShardFailure, ...]

    @property
    def complete(self) -> bool:
        return not self.failures

    def completed_results(self) -> list:
        """The results of the chunks that succeeded, in chunk order."""
        return [r for r in self.results if r is not None]


# Worker-side call table.  Set in the parent immediately before each
# pool round is forked, so the forked workers inherit it by memory —
# this is how the (unpicklable-by-design) fault spec and the current
# round number reach :func:`_run_chunk` without travelling through the
# call queue.
_POOL_CALL: dict = {}


def _pool_initializer(initializer: Callable[..., None] | None, initargs: tuple) -> None:
    # Runs in the worker.  The flag keeps injected faults from ever
    # firing in the parent (e.g. on the serial fallback path).
    _POOL_CALL["in_worker"] = True
    if initializer is not None:
        initializer(*initargs)


def _run_chunk(chunk_index: int, chunk) -> object:
    claims = _POOL_CALL.get("claims")
    if claims is not None:
        # Mark the claim *before* any work (or injected fault) so the
        # parent can tell "died while running this chunk" from "never
        # started it" when a pool breaks — the latter is retried for
        # free.  Shared fork memory: the parent reads it post-mortem.
        claims[chunk_index] = 1
    fault = _POOL_CALL.get("fault")
    if (
        fault is not None
        and _POOL_CALL.get("in_worker")
        and chunk_index == fault.chunk_index
        and _POOL_CALL.get("round", 0) < fault.times
    ):
        if fault.kind == "crash":
            os._exit(3)
        time.sleep(_HANG_SECONDS)
    return _POOL_CALL["fn"](chunk)


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    # There is no public API to interrupt a running future in a process
    # pool; killing the worker processes is the only way to unstick a
    # hung chunk.  ``_processes`` is private but stable across the
    # CPython versions we support; degrade to a plain shutdown if it
    # ever disappears.
    processes = getattr(pool, "_processes", None)
    for proc in list((processes or {}).values()):
        proc.kill()


def pool_map_chunks(
    chunks: Sequence[T],
    chunk_fn: Callable[[T], R],
    initializer: Callable[..., None],
    initargs: tuple,
    jobs: int,
    timeout: float | None = None,
    retries: int = 1,
    fault: WorkerFault | None = None,
) -> PoolOutcome | None:
    """Map ``chunk_fn`` over ``chunks`` on a fork-based process pool,
    preserving order.  Returns ``None`` when the platform lacks fork —
    callers run their serial path instead (same results, one process).

    Failure handling: each chunk gets ``1 + retries`` attempts.  A chunk
    that times out (``timeout`` seconds, ``None`` = wait forever) or
    raises costs itself one attempt; when the pool *breaks* (a worker
    died) every chunk a worker had actually *claimed* but not finished
    is charged, because worker death cannot be attributed to a single
    claimed chunk.  Chunks that were never claimed in an aborted round —
    queued behind the crash, or whose worker died before reaching them —
    are clean-crash-before-write casualties and are retried for free (a
    bounded number of times, so a pathological pre-claim crasher still
    terminates).  Each retry round forks a fresh pool — and once a round
    has aborted, retries run **quarantined**, one chunk per
    single-worker pool, so a deterministically-crashing chunk exhausts
    only its own attempts instead of taking the whole pool (and every
    innocent chunk's retry budget) down with it on each round.  A chunk
    whose budget was consumed entirely by shared-pool crash charges,
    without ever getting a pool of its own, earns one extra quarantined
    solo attempt before being declared failed.  Chunks out of attempts
    are reported as :class:`ShardFailure` in the returned
    :class:`PoolOutcome` — this function does not raise for worker
    failures and does not hang on worker hangs (given a timeout).
    """
    if not fork_available():
        return None
    context = multiprocessing.get_context("fork")
    max_attempts = 1 + max(0, retries)
    results: list = [None] * len(chunks)
    attempts = [0] * len(chunks)
    free_passes = [0] * len(chunks)
    solo_attempted = [False] * len(chunks)
    bonus_granted = [False] * len(chunks)
    last_reason: dict[int, tuple[str, str]] = {}
    pending = list(range(len(chunks)))
    rounds = 0
    quarantine = False
    # Shared fork memory: workers flag each chunk they actually start,
    # so a broken pool can distinguish claimed-but-lost work (charged)
    # from never-started work (free retry).
    claims = context.Array("b", len(chunks), lock=False)
    while pending:
        groups = [[ci] for ci in pending] if quarantine else [pending]
        next_pending: list[int] = []
        any_failed = False
        for group in groups:
            # Arm the worker-side call table *before* forking: the
            # workers inherit fn/fault/round via fork memory.
            _POOL_CALL["fn"] = chunk_fn
            _POOL_CALL["fault"] = fault
            _POOL_CALL["round"] = rounds
            _POOL_CALL["claims"] = claims
            for ci in group:
                claims[ci] = 0
            if len(group) == 1:
                solo_attempted[group[0]] = True
            rounds += 1
            workers = max(1, min(jobs, len(group)))
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_pool_initializer,
                initargs=(initializer, initargs),
            )
            aborted = False
            failed_round: list[int] = []
            still_pending: list[int] = []
            try:
                futures = {
                    ci: pool.submit(_run_chunk, ci, chunks[ci]) for ci in group
                }
                for ci in group:
                    future = futures[ci]
                    if aborted:
                        # The pool is already torn down; harvest chunks
                        # that finished cleanly, retry the rest without
                        # charging them an attempt (they never really
                        # ran).
                        if future.done():
                            try:
                                results[ci] = future.result(timeout=0)
                                continue
                            except Exception:
                                pass
                        still_pending.append(ci)
                        continue
                    try:
                        results[ci] = future.result(timeout=timeout)
                    except FuturesTimeoutError:
                        attempts[ci] += 1
                        last_reason[ci] = (
                            "timeout",
                            "chunk exceeded the per-chunk timeout; "
                            "worker killed",
                        )
                        failed_round.append(ci)
                        obs.inc("parallel.worker_failures")
                        _kill_pool_processes(pool)
                        aborted = True
                    except BrokenProcessPool:
                        # A worker died; every *claimed* unfinished chunk
                        # of this round (this one included) is charged an
                        # attempt.  A broken pool marks *all* remaining
                        # futures done with the exception set, so
                        # "finished cleanly" means done with no
                        # exception.  Chunks no worker ever claimed died
                        # cleanly before any work (or write) happened —
                        # retryable, not a permanent shard loss.
                        aborted = True
                        for other in group:
                            if results[other] is not None:
                                continue
                            peer = futures[other]
                            if (
                                other != ci
                                and peer.done()
                                and peer.exception() is None
                            ):
                                continue
                            if (
                                not claims[other]
                                and free_passes[other] < max_attempts
                            ):
                                free_passes[other] += 1
                                still_pending.append(other)
                                obs.inc("parallel.clean_crash_retries")
                                continue
                            attempts[other] += 1
                            last_reason[other] = (
                                "crash",
                                "worker process died before the chunk "
                                "completed",
                            )
                            failed_round.append(other)
                            obs.inc("parallel.worker_failures")
                    except Exception as exc:
                        # The chunk function itself raised (the pool is
                        # still healthy) — keep going with the round.
                        attempts[ci] += 1
                        last_reason[ci] = (
                            "error", f"{type(exc).__name__}: {exc}"
                        )
                        failed_round.append(ci)
                        obs.inc("parallel.worker_failures")
            finally:
                pool.shutdown(wait=not aborted, cancel_futures=True)
            if aborted:
                quarantine = True
            if failed_round:
                any_failed = True
            for ci in still_pending + failed_round:
                if results[ci] is not None:
                    continue
                if attempts[ci] < max_attempts:
                    next_pending.append(ci)
                elif (
                    last_reason.get(ci, ("", ""))[0] == "crash"
                    and not solo_attempted[ci]
                    and not bonus_granted[ci]
                ):
                    # Every charge came from a shared pool breaking
                    # around this chunk and it never had a pool of its
                    # own: clean-crash collateral, not a proven crasher.
                    # One extra quarantined solo attempt decides it.
                    bonus_granted[ci] = True
                    next_pending.append(ci)
                    obs.inc("parallel.clean_crash_retries")
        if any_failed and next_pending:
            obs.inc("parallel.pool_retries")
        pending = sorted(set(next_pending))
    failures = tuple(
        ShardFailure(
            chunk_index=ci,
            attempts=attempts[ci],
            reason=last_reason[ci][0],
            detail=last_reason[ci][1],
        )
        for ci in range(len(chunks))
        if results[ci] is None and ci in last_reason
    )
    if failures:
        obs.inc("parallel.shards_failed", len(failures))
    return PoolOutcome(results=results, failures=failures)


# -- worker-side observability ---------------------------------------------
#
# Fork copies the parent's registry into every worker, so each worker
# resets its (copied) registry in the initializer — otherwise the
# parent's pre-fork counts would be merged back a second time.  Each
# chunk ships the *delta* between its start and end snapshots, and the
# first chunk a worker executes additionally ships the initializer's
# snapshot (engine construction — the fork-side setup cost).


def init_worker_obs(parent_enabled: bool) -> None:
    """Reset the forked registry and mirror the parent's on/off switch."""
    obs.reset()
    obs.set_enabled(parent_enabled)


def take_init_snapshot() -> obs.MetricsSnapshot | None:
    """Snapshot the initializer's work (call at the end of a worker
    initializer); ``None`` when observability is off."""
    return obs.snapshot() if obs.enabled() else None


def merge_worker_snapshots(
    snapshots: Iterable[obs.MetricsSnapshot | None],
) -> None:
    """Fold worker deltas back into the parent registry, in order."""
    for snap in snapshots:
        if snap is not None:
            obs.merge_snapshot(snap)


# -- adequacy campaigns ----------------------------------------------------

_WORKER: dict = {}


def _init_campaign_worker(
    client: RosslClient,
    wcet: WcetModel,
    analysis: AnalysisResult,
    horizon: int,
    runs: int,
    seed_root: int,
    intensity: float,
    adversarial_fraction: float,
    engine_name: str,
    obs_enabled: bool = False,
) -> None:
    init_worker_obs(obs_enabled)
    _WORKER["campaign"] = (
        client, wcet, analysis, horizon, runs,
        seed_root, intensity, adversarial_fraction,
    )
    # The expensive part — one engine per worker process, shared by
    # every run that worker executes.
    with obs.span("campaign.worker_init", pid=os.getpid(), engine=engine_name):
        _WORKER["engine"] = create_engine(engine_name, client)
    _WORKER["init_snapshot"] = take_init_snapshot()


def _campaign_chunk(
    indices: Sequence[int],
) -> tuple[list[RunOutcome], obs.MetricsSnapshot | None]:
    (client, wcet, analysis, horizon, runs,
     seed_root, intensity, adversarial_fraction) = _WORKER["campaign"]
    engine = _WORKER["engine"]
    before = obs.snapshot() if obs.enabled() else None
    with obs.span("campaign.chunk", pid=os.getpid(), runs=len(indices)):
        outcomes = [
            adequacy_run(
                client, wcet, analysis, horizon, runs, index,
                seed_root=seed_root, intensity=intensity,
                adversarial_fraction=adversarial_fraction, engine=engine,
            )
            for index in indices
        ]
    if before is None:
        return outcomes, None
    delta = obs.snapshot().diff(before)
    init_snap = _WORKER.pop("init_snapshot", None)
    if init_snap is not None:
        delta = init_snap.merge(delta)
    return outcomes, delta


def run_campaign_parallel(
    client: RosslClient,
    wcet: WcetModel,
    analysis: AnalysisResult,
    horizon: int,
    runs: int,
    seed_root: int = 0,
    intensity: float = 1.0,
    adversarial_fraction: float = 0.5,
    engine: str | SchedulerEngine = "python",
    jobs: int = 2,
    worker_timeout: float | None = None,
    worker_retries: int = 1,
    worker_fault: WorkerFault | None = None,
    indices: Sequence[int] | None = None,
    pool=None,
) -> tuple[list[RunOutcome], tuple[ShardFailure, ...]]:
    """Execute ``runs`` adequacy runs across ``jobs`` workers.

    Returns ``(outcomes, shard_failures)``: the per-run outcomes
    (callers merge them with
    :func:`repro.analysis.adequacy.merge_outcomes`) plus any shards
    whose runs are missing because their workers failed past the retry
    budget (see :func:`pool_map_chunks`).  Falls back to serial
    in-process execution (no failures possible) when ``jobs <= 1``, the
    campaign is trivially small, or the platform lacks fork.

    ``indices`` restricts execution to a subset of the run-index space
    (incremental campaigns: the cache answered the rest); ``runs`` stays
    the *full* campaign size because it determines each run's
    adversarial/uniform split.  Default: all of ``range(runs)``.

    ``pool`` (a :class:`repro.serve.pool.ResidentPool`) runs the chunks
    on externally owned **resident** workers instead of forking a pool
    per campaign — the daemon's path, and the warm-worker fix for the
    per-campaign spin-up E18 measures.  Outcomes stay bit-identical
    (same ``adequacy_run``, same chunks); ``jobs`` is ignored in favor
    of the pool's worker count.  A ``worker_fault`` forces the fork-pool
    path: injection targets pool *rounds*, which resident workers do not
    have.
    """
    engine_name = resolve_engine_name(
        engine if isinstance(engine, str) else engine.name
    )
    indices = list(range(runs)) if indices is None else list(indices)
    if pool is not None and worker_fault is None:
        setup = (
            client, wcet, analysis, horizon, runs,
            seed_root, intensity, adversarial_fraction, engine_name,
        )
        chunks = split_chunks(indices, pool.workers)
        with obs.span(
            "campaign.resident", workers=pool.workers, runs=len(indices)
        ):
            results, failures = pool.map_campaign_chunks(
                setup, chunks,
                timeout=worker_timeout, retries=worker_retries,
            )
        outcomes = [
            outcome
            for chunk in results
            if chunk is not None
            for outcome in chunk
        ]
        return outcomes, failures
    chunks = split_chunks(indices, jobs)
    outcomes: list[RunOutcome] | None = None
    failures: tuple[ShardFailure, ...] = ()
    if jobs > 1 and len(chunks) > 1:
        with obs.span("campaign.parallel", jobs=jobs, runs=runs):
            pooled = pool_map_chunks(
                chunks,
                _campaign_chunk,
                initializer=_init_campaign_worker,
                initargs=(
                    client, wcet, analysis, horizon, runs,
                    seed_root, intensity, adversarial_fraction, engine_name,
                    obs.enabled(),
                ),
                jobs=jobs,
                timeout=worker_timeout,
                retries=worker_retries,
                fault=worker_fault,
            )
        if pooled is not None:
            merge_worker_snapshots(snap for _, snap in pooled.completed_results())
            outcomes = [
                outcome
                for chunk, _ in pooled.completed_results()
                for outcome in chunk
            ]
            failures = pooled.failures
    if outcomes is None:
        backend = create_engine(engine_name, client)
        outcomes = [
            adequacy_run(
                client, wcet, analysis, horizon, runs, index,
                seed_root=seed_root, intensity=intensity,
                adversarial_fraction=adversarial_fraction, engine=backend,
            )
            for index in indices
        ]
    return outcomes, failures


# -- parameter sweeps ------------------------------------------------------


def _init_sweep_worker(
    evaluate: Callable,
    metric_names: tuple[str, ...],
    obs_enabled: bool = False,
    warm_init: Callable[[], None] | None = None,
) -> None:
    init_worker_obs(obs_enabled)
    _WORKER["sweep"] = (evaluate, metric_names)
    if warm_init is not None:
        # Per-worker warm-up, once per process instead of once per cell
        # (e.g. compiling the step tables every cell of an RTA sweep
        # evaluates — see repro.analysis.campaigns.analysis_sweep).
        with obs.span("sweep.worker_init", pid=os.getpid()):
            warm_init()


def _sweep_chunk(
    values: Sequence,
) -> tuple[list[tuple], obs.MetricsSnapshot | None]:
    evaluate, metric_names = _WORKER["sweep"]
    before = obs.snapshot() if obs.enabled() else None
    rows = []
    with obs.span("sweep.chunk", pid=os.getpid(), values=len(values)):
        for value in values:
            cells = tuple(evaluate(value))
            if len(cells) != len(metric_names):
                raise ValueError(
                    f"evaluate returned {len(cells)} cells for "
                    f"{len(metric_names)} metrics"
                )
            rows.append((value, *cells))
    if before is None:
        return rows, None
    return rows, obs.snapshot().diff(before)


def parallel_sweep(
    parameter: str,
    values: Iterable,
    metrics: Sequence[str],
    evaluate: Callable,
    jobs: int = 2,
    worker_timeout: float | None = None,
    worker_retries: int = 1,
    worker_fault: WorkerFault | None = None,
    warm_init: Callable[[], None] | None = None,
) -> CampaignResult:
    """A parameter sweep across a process pool (rows stay in order).

    Each parameter value is evaluated independently, so the sweep
    parallelizes like the campaigns do.  With fork workers, ``evaluate``
    is inherited rather than pickled, so closures work; only the result
    rows must be picklable.  Falls back to serial evaluation when the
    pool is unavailable.  Chunks whose workers failed past the retry
    budget are re-evaluated serially in the parent — a sweep's rows are
    its whole point, so degradation here means losing the speedup, not
    the rows.

    ``warm_init`` runs once in each worker's initializer before any
    cell — sweeps whose cells share expensive derived state (compiled
    step tables, pooled supplies) amortize it per worker instead of
    paying it per cell.
    """
    from repro.analysis.campaigns import sweep

    metric_names = tuple(metrics)
    value_list = list(values)
    chunks = split_chunks(value_list, jobs)
    if jobs > 1 and len(chunks) > 1:
        with obs.span("sweep.parallel", jobs=jobs, values=len(value_list)) as sp:
            pooled = pool_map_chunks(
                chunks,
                _sweep_chunk,
                initializer=_init_sweep_worker,
                initargs=(evaluate, metric_names, obs.enabled(), warm_init),
                jobs=jobs,
                timeout=worker_timeout,
                retries=worker_retries,
                fault=worker_fault,
            )
        if pooled is not None:
            merge_worker_snapshots(
                snap for r in pooled.results if r is not None for snap in [r[1]]
            )
            rows_by_chunk: list = []
            for index, pooled_result in enumerate(pooled.results):
                if pooled_result is not None:
                    rows_by_chunk.append(pooled_result[0])
                else:
                    # Worker(s) for this chunk failed: recover the rows
                    # serially in the parent.  Deterministic errors in
                    # ``evaluate`` reproduce here instead of being
                    # swallowed as shard failures.
                    recovered = []
                    for value in chunks[index]:
                        cells = tuple(evaluate(value))
                        if len(cells) != len(metric_names):
                            raise ValueError(
                                f"evaluate returned {len(cells)} cells for "
                                f"{len(metric_names)} metrics"
                            )
                        recovered.append((value, *cells))
                    rows_by_chunk.append(recovered)
            rows = tuple(row for chunk_rows in rows_by_chunk for row in chunk_rows)
            return CampaignResult(
                parameter, metric_names, rows,
                elapsed_seconds=sp.elapsed_seconds,
            )
    return sweep(parameter, value_list, metric_names, evaluate)

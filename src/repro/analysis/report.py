"""Plain-text table rendering for experiment output.

Benchmarks and examples print the same rows the paper's artifacts
report; this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_elapsed(seconds: float) -> str:
    """One-line wall-clock footer for campaign tables.

    ``seconds`` comes from the campaign's span
    (:class:`repro.obs.spans.Span`, monotonic clocks) rather than ad-hoc
    ``time.time()`` bracketing — the same number the trace exporters
    show, so table footers and Chrome traces never disagree.
    """
    if seconds < 0:
        raise ValueError("elapsed time cannot be negative")
    return f"elapsed: {seconds:.3f} s"


def campaign_elapsed_seconds(span_name: str = "campaign.adequacy") -> float | None:
    """Total recorded wall clock of all spans named ``span_name``.

    Reads the observability span tree; ``None`` when nothing was
    recorded (observability off, or no campaign ran).
    """
    from repro.obs import find_spans

    records = find_spans(span_name)
    if not records:
        return None
    return sum(record.duration_ns for record in records) / 1e9


def _cell(value: object) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)

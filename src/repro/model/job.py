"""Jobs: runtime instances of tasks.

Following the paper (section 3.2), ``Job ≜ (msg_data * job_id)``: a job is
a message payload paired with a unique identifier.  The identifier is
assigned by the instrumented ``read`` semantics (the ``σ_trace.idx``
counter of Fig. 6) — it is *not* derived from the payload, because two
packets may carry identical data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.message import MsgData

#: Unique job identifier (``job_id ≜ ℕ`` in the paper).
JobId = int


@dataclass(frozen=True, slots=True, order=True)
class Job:
    """A job: message data plus the unique id assigned at read time.

    Jobs are immutable and hashable; equality is structural on
    ``(data, jid)``.  Uniqueness of ``jid`` across a trace is a *verified
    property* (Def. 3.2, third clause), not an assumption of this class.
    """

    data: MsgData
    jid: JobId

    def __post_init__(self) -> None:
        if self.jid < 0:
            raise ValueError(f"job id must be non-negative, got {self.jid}")

    def __str__(self) -> str:
        payload = ",".join(str(w) for w in self.data)
        return f"j{self.jid}({payload})"

"""Tasks and task systems: the static workload description.

A :class:`Task` corresponds to one callback type registered with Rössl
(paper section 4.1 "statics"): it fixes the callback's worst-case
execution time ``C_i`` and its scheduling priority ``P_i``.  The arrival
curve ``α_i`` — the bound on how many jobs of the task may arrive in any
window — lives in :mod:`repro.rta.curves` and is associated with tasks
through a :class:`TaskSystem`.

Priority convention: **larger number = higher priority** (the paper only
requires a total priority order; we fix this direction throughout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.model.message import MsgData

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.rta.curves import ArrivalCurve


@dataclass(frozen=True, slots=True)
class Task:
    """A task (callback type).

    Attributes:
        name: human-readable identifier, unique within a task system.
        priority: fixed priority ``P_i``; larger is higher.
        wcet: worst-case execution time ``C_i`` of one callback
            invocation, in time units; must be positive (Thm. 5.1
            requires ``0 < C_i``).
        type_tag: the integer tag that identifies this task in message
            payloads (the value ``msg_identify_type`` extracts).
        deadline: relative deadline ``D_i`` (completion due ``D_i``
            after arrival); only consumed by deadline-based analyses
            such as the EDF extension — the NPFP analysis ignores it.
    """

    name: str
    priority: int
    wcet: int
    type_tag: int
    deadline: int | None = None

    def __post_init__(self) -> None:
        if self.wcet <= 0:
            raise ValueError(f"task {self.name!r}: wcet must be positive, got {self.wcet}")
        if self.type_tag < 0:
            raise ValueError(f"task {self.name!r}: type_tag must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"task {self.name!r}: deadline must be positive")

    def __str__(self) -> str:
        return f"{self.name}(P={self.priority}, C={self.wcet})"


class TaskSystem:
    """An immutable collection of tasks with payload-to-task resolution.

    This is the model-level counterpart of the client configuration of
    Def. 3.3: the task list ``τ``, the ``msg_to_task`` mapping (here:
    the first payload word is the task's ``type_tag``), and ``task_prio``
    (stored on each task).  Arrival curves are attached per task and
    consumed by the RTA layer.
    """

    def __init__(
        self,
        tasks: Iterable[Task],
        arrival_curves: Mapping[str, "ArrivalCurve"] | None = None,
    ) -> None:
        self._tasks: tuple[Task, ...] = tuple(tasks)
        if not self._tasks:
            raise ValueError("a task system needs at least one task")
        names = [t.name for t in self._tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names in {names}")
        tags = [t.type_tag for t in self._tasks]
        if len(set(tags)) != len(tags):
            raise ValueError(f"duplicate task type tags in {tags}")
        self._by_name = {t.name: t for t in self._tasks}
        self._by_tag = {t.type_tag: t for t in self._tasks}
        self._curves: dict[str, "ArrivalCurve"] = dict(arrival_curves or {})
        unknown = set(self._curves) - set(self._by_name)
        if unknown:
            raise ValueError(f"arrival curves given for unknown tasks: {sorted(unknown)}")

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task: object) -> bool:
        return isinstance(task, Task) and self._by_name.get(task.name) == task

    @property
    def tasks(self) -> tuple[Task, ...]:
        return self._tasks

    def by_name(self, name: str) -> Task:
        """Look up a task by name; raises ``KeyError`` if absent."""
        return self._by_name[name]

    def msg_to_task(self, data: MsgData) -> Task:
        """Resolve a message payload to its task (Def. 3.3 ``msg_to_task``).

        The first payload word is interpreted as the task's type tag.
        Raises ``KeyError`` for empty payloads or unknown tags — a
        well-formed client never sends such messages.
        """
        if not data:
            raise KeyError("empty message payload has no task type")
        tag = data[0]
        if tag not in self._by_tag:
            raise KeyError(f"no task with type tag {tag}")
        return self._by_tag[tag]

    def priority_of(self, data: MsgData) -> int:
        """Priority of the job a payload announces (``task_prio``)."""
        return self.msg_to_task(data).priority

    def arrival_curve(self, name: str) -> "ArrivalCurve":
        """The arrival curve ``α_i`` attached to task ``name``.

        Raises ``KeyError`` when the system was built without a curve for
        the task — analyses that need curves require them explicitly.
        """
        return self._curves[name]

    @property
    def has_curves(self) -> bool:
        """Whether every task has an attached arrival curve."""
        return all(t.name in self._curves for t in self._tasks)

    def with_curves(self, curves: Mapping[str, "ArrivalCurve"]) -> "TaskSystem":
        """A copy of this system with (replaced) arrival curves."""
        return TaskSystem(self._tasks, curves)

    def higher_or_equal_priority(self, task: Task) -> tuple[Task, ...]:
        """Tasks with priority ≥ ``task``'s, excluding ``task`` itself."""
        return tuple(
            t for t in self._tasks if t.name != task.name and t.priority >= task.priority
        )

    def lower_priority(self, task: Task) -> tuple[Task, ...]:
        """Tasks with priority strictly below ``task``'s."""
        return tuple(t for t in self._tasks if t.priority < task.priority)

"""Core domain model: messages, jobs, tasks, and task systems.

This package implements the *statics* and *dynamics* of the abstract
workload model of RefinedProsa (paper section 4.1):

* a :class:`~repro.model.task.Task` describes a class of jobs (a callback
  type): its worst-case execution time ``C_i`` and priority ``P_i``;
* a :class:`~repro.model.message.Message` is the raw datagram payload that
  announces a job to the scheduler;
* a :class:`~repro.model.job.Job` is a runtime instance — a message paired
  with a unique identifier assigned by the instrumented ``read`` semantics
  (paper Fig. 6, the ``idx`` counter).

Time is modelled as non-negative integers in arbitrary units ("cycles"),
exactly as in the paper (footnote 3).
"""

from repro.model.job import Job, JobId
from repro.model.message import Message, MsgData
from repro.model.task import Task, TaskSystem

__all__ = [
    "Job",
    "JobId",
    "Message",
    "MsgData",
    "Task",
    "TaskSystem",
]

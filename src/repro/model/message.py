"""Messages: the raw datagram payloads that announce jobs.

In the paper, ``msg_data ≜ list ℤ`` — a message is just a sequence of
integers read from a datagram socket.  Two distinct jobs may carry
identical data (two identical packets), which is exactly why the
instrumented semantics assigns separate unique identifiers (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Message payload type: an immutable sequence of integers (``list ℤ`` in
#: the paper; we use a tuple so payloads are hashable and can key maps
#: like the semantics' ``id_map``).
MsgData = tuple[int, ...]


@dataclass(frozen=True, slots=True)
class Message:
    """A datagram payload.

    The first payload word conventionally identifies the task type (this
    is what the client's ``msg_identify_type`` C function inspects, see
    Def. 3.3), but the model layer treats the payload as opaque.
    """

    data: MsgData

    def __post_init__(self) -> None:
        if not isinstance(self.data, tuple):
            raise TypeError(f"message data must be a tuple, got {type(self.data).__name__}")
        if any(not isinstance(word, int) for word in self.data):
            raise TypeError("message data must contain only integers")

    def __len__(self) -> int:
        return len(self.data)

    @staticmethod
    def of(*words: int) -> "Message":
        """Convenience constructor: ``Message.of(3, 1, 4)``."""
        return Message(tuple(words))

"""Deployment specifications: declarative JSON for clients + WCETs.

The CLI (:mod:`repro.cli`) and user tooling describe a Rössl deployment
in one JSON document::

    {
      "policy": "npfp",
      "sockets": [0, 1],
      "wcet": {"failed_read": 4, "success_read": 6, "selection": 3,
               "dispatch": 2, "completion": 2, "idling": 3},
      "tasks": [
        {"name": "control", "priority": 2, "wcet": 150, "type_tag": 1,
         "curve": {"kind": "sporadic", "min_separation": 2000}},
        {"name": "logger", "priority": 1, "wcet": 400, "type_tag": 2,
         "deadline": 5000,
         "curve": {"kind": "leaky-bucket", "burst": 2, "rate_separation": 900}}
      ]
    }

Curve kinds: ``sporadic`` (``min_separation``), ``leaky-bucket``
(``burst``, ``rate_separation``), ``table`` (``steps`` as ``[[window,
count], …]``, ``tail_separation``).

An optional top-level ``"engine"`` key names the preferred execution
backend from the engine registry (``python``, ``interp``, ``vm``,
``vm-opt``; see :mod:`repro.engine`); the default is ``python``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.engine import UnknownEngineError, resolve_engine_name
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import ArrivalCurve, LeakyBucketCurve, SporadicCurve, TableCurve
from repro.timing.wcet import WcetModel


class SpecError(Exception):
    """A deployment specification is malformed."""


@dataclass(frozen=True)
class Deployment:
    """A parsed deployment: client plus WCET model.

    ``engine`` is the spec's preferred execution backend (a registry
    name, canonicalized); CLI flags override it per invocation.
    """

    client: RosslClient
    wcet: WcetModel
    engine: str = "python"


def _require(mapping: Mapping[str, Any], key: str, where: str) -> Any:
    if key not in mapping:
        raise SpecError(f"{where}: missing required key {key!r}")
    return mapping[key]


def parse_curve(spec: Mapping[str, Any], where: str) -> ArrivalCurve:
    kind = _require(spec, "kind", where)
    try:
        if kind == "sporadic":
            return SporadicCurve(_require(spec, "min_separation", where))
        if kind == "leaky-bucket":
            return LeakyBucketCurve(
                burst=_require(spec, "burst", where),
                rate_separation=_require(spec, "rate_separation", where),
            )
        if kind == "table":
            steps = tuple(
                (int(w), int(c)) for w, c in _require(spec, "steps", where)
            )
            return TableCurve(
                steps=steps,
                tail_separation=_require(spec, "tail_separation", where),
            )
    except (ValueError, TypeError) as exc:
        raise SpecError(f"{where}: bad curve parameters: {exc}") from exc
    raise SpecError(f"{where}: unknown curve kind {kind!r}")


def parse_deployment(spec: Mapping[str, Any]) -> Deployment:
    """Build a :class:`Deployment` from a parsed JSON document."""
    try:
        wcet_spec = _require(spec, "wcet", "deployment")
        wcet = WcetModel(
            failed_read=_require(wcet_spec, "failed_read", "wcet"),
            success_read=_require(wcet_spec, "success_read", "wcet"),
            selection=_require(wcet_spec, "selection", "wcet"),
            dispatch=_require(wcet_spec, "dispatch", "wcet"),
            completion=_require(wcet_spec, "completion", "wcet"),
            idling=_require(wcet_spec, "idling", "wcet"),
        )
    except (ValueError, TypeError) as exc:
        raise SpecError(f"wcet: {exc}") from exc

    task_specs = _require(spec, "tasks", "deployment")
    if not isinstance(task_specs, list) or not task_specs:
        raise SpecError("deployment: 'tasks' must be a non-empty list")
    tasks = []
    curves = {}
    for index, task_spec in enumerate(task_specs):
        where = f"tasks[{index}]"
        try:
            task = Task(
                name=_require(task_spec, "name", where),
                priority=_require(task_spec, "priority", where),
                wcet=_require(task_spec, "wcet", where),
                type_tag=_require(task_spec, "type_tag", where),
                deadline=task_spec.get("deadline"),
            )
        except (ValueError, TypeError) as exc:
            raise SpecError(f"{where}: {exc}") from exc
        tasks.append(task)
        if "curve" in task_spec:
            curves[task.name] = parse_curve(task_spec["curve"], f"{where}.curve")
    try:
        system = TaskSystem(tasks, curves)
        client = RosslClient.make(
            system,
            sockets=spec.get("sockets", [0]),
            policy=spec.get("policy", "npfp"),
        )
    except ValueError as exc:
        raise SpecError(str(exc)) from exc
    try:
        engine = resolve_engine_name(spec.get("engine", "python"))
    except UnknownEngineError as exc:
        raise SpecError(f"engine: {exc}") from exc
    return Deployment(client=client, wcet=wcet, engine=engine)


def load_deployment(path: str | Path) -> Deployment:
    """Load a deployment spec from a JSON file."""
    try:
        document = json.loads(Path(path).read_text())
    except OSError as exc:
        raise SpecError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise SpecError(f"{path}: the top level must be an object")
    return parse_deployment(document)

"""The analysis daemon: asyncio HTTP front end over the resident pool.

Request path (``POST /v1/analyze`` etc.):

1. **parse** — the JSON body becomes a validated
   :class:`repro.serve.protocol.Request` (400 on nonsense);
2. **admit** — the RTA-informed controller
   (:mod:`repro.serve.admission`) either queues the request or sheds it
   fast with ``503 + Retry-After`` before it costs any worker time;
3. **batch** — the micro-batcher (:mod:`repro.serve.batching`) holds
   compatible analyze calls for a couple of milliseconds and dispatches
   groups as one ``analyse_batch``;
4. **execute** — the group runs on a resident worker
   (:mod:`repro.serve.pool`) whose memo caches and compiled step tables
   are warm from every previous request;
5. **respond** — the JSON response's ``stdout`` field is byte-identical
   to the offline CLI's stdout for the same invocation.

Introspection: ``GET /healthz`` (liveness + worker repair),
``GET /metrics`` (:mod:`repro.obs` counters plus serve-layer state),
``GET /cache/stats`` (the :func:`repro.cache.cache_stats_payload`
schema, read from a worker so it reflects the caches doing the work).

The HTTP dialect is deliberately minimal — HTTP/1.1, one request per
connection, ``Connection: close`` — because every supported client
(``repro client``, curl, the test suite) speaks it, and a dependency-free
server beats a featureful one here.  SIGTERM/SIGINT drain gracefully:
stop accepting, finish in-flight work, stop the pool, exit 0.
"""

from __future__ import annotations

import asyncio
import functools
import secrets
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.serve.admission import (
    DEFAULT_POLICIES,
    AdmissionController,
    ClassPolicy,
)
from repro.serve.batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_WINDOW_S,
    MicroBatcher,
)
from repro.serve.pool import ResidentPool
from repro.serve.protocol import (
    COMMAND_OPTIONS,
    ProtocolError,
    Response,
    encode_json,
    parse_request,
)

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: Largest accepted request body (a deployment spec is a few KiB).
MAX_BODY_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` configures."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    batch_window_s: float = DEFAULT_WINDOW_S
    max_batch: int = DEFAULT_MAX_BATCH
    admission: bool = True
    policies: tuple[ClassPolicy, ...] = DEFAULT_POLICIES
    request_timeout: float | None = 300.0
    request_retries: int = 1


@dataclass
class _HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


class AnalysisServer:
    """One daemon instance: pool + batcher + admission + HTTP."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.pool = ResidentPool(
            workers=config.workers,
            request_timeout=config.request_timeout,
        )
        self.batcher = MicroBatcher(
            self._dispatch,
            window_s=config.batch_window_s,
            max_batch=config.max_batch,
        )
        self.admission = (
            AdmissionController(config.workers, config.policies)
            if config.admission
            else None
        )
        # Executor threads block on pipe round-trips; a few more threads
        # than workers keeps queueing in the pool (where admission
        # models it), not in the executor.
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers + 2,
            thread_name_prefix="repro-serve-dispatch",
        )
        self._server: asyncio.base_events.Server | None = None
        self._inflight = 0
        self._draining = False
        self._stopped: asyncio.Event | None = None
        self.requests_total = 0
        self.started_monotonic = time.monotonic()
        # Fallback request ids must be unique across the daemon's whole
        # life *and* across respawns: a bare per-process counter restarts
        # at 1 after every respawn, so two requests in different
        # incarnations (or two racing connections, if the handler ever
        # awaits between bump and use) would share "req-1" — and clients
        # correlating responses by id would pair them wrongly.  An
        # incarnation token makes the id globally fresh.
        self._incarnation = secrets.token_hex(4)

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self.pool.start()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        print(
            f"repro serve: listening on {self.config.host}:{self.port} "
            f"({self.config.workers} workers)",
            file=sys.stderr,
            flush=True,
        )

    async def drain(self) -> None:
        """Graceful stop: no new connections, finish in-flight, stop pool."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.drain()
        while self._inflight > 0:
            await asyncio.sleep(0.01)
        self.pool.shutdown()
        self._executor.shutdown(wait=True)
        print("repro serve: drained", file=sys.stderr, flush=True)
        if self._stopped is not None:
            self._stopped.set()

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`drain` completes (signal handlers call it)."""
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, requests: Sequence) -> list[Response]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor,
            functools.partial(
                self.pool.submit_batch,
                list(requests),
                retries=self.config.request_retries,
            ),
        )

    # -- HTTP plumbing -------------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> _HttpRequest | None:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        if length:
            body = await reader.readexactly(length)
        return _HttpRequest(method=method, path=path, headers=headers, body=body)

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        extra_headers: Sequence[tuple[str, str]] = (),
    ) -> None:
        body = encode_json(payload)
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json; charset=utf-8",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in extra_headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                http = await self._read_request(reader)
            except ProtocolError as exc:
                await self._write_response(writer, 413, {"error": str(exc)})
                return
            except asyncio.IncompleteReadError:
                return
            if http is None:
                return
            await self._route(http, writer)
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    # -- routing -------------------------------------------------------------

    async def _route(
        self, http: _HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        if http.method == "GET":
            if http.path == "/healthz":
                await self._write_response(writer, 200, self._healthz_payload())
                return
            if http.path == "/metrics":
                await self._write_response(writer, 200, self._metrics_payload())
                return
            if http.path == "/cache/stats":
                await self._write_response(
                    writer, 200, await self._cache_stats_payload()
                )
                return
            await self._write_response(
                writer, 404, {"error": f"no such resource {http.path!r}"}
            )
            return
        if http.method != "POST":
            await self._write_response(
                writer, 405, {"error": f"method {http.method} not supported"}
            )
            return
        command = None
        if http.path.startswith("/v1/"):
            candidate = http.path[len("/v1/"):]
            if candidate in COMMAND_OPTIONS:
                command = candidate
        if command is None:
            await self._write_response(
                writer, 404,
                {"error": f"no such endpoint {http.path!r}; POST /v1/<command>"},
            )
            return
        await self._handle_analysis(command, http, writer)

    async def _handle_analysis(
        self, command: str, http: _HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        self.requests_total += 1
        serial = self.requests_total
        try:
            import json as _json

            document = _json.loads(http.body.decode("utf-8")) if http.body else {}
            if not isinstance(document, dict):
                raise ProtocolError("request body must be a JSON object")
            body_command = document.setdefault("command", command)
            if body_command != command:
                raise ProtocolError(
                    f"request body says command {body_command!r} but was "
                    f"POSTed to /v1/{command}"
                )
            request = parse_request(
                _json.dumps(document),
                request_id_fallback=f"req-{self._incarnation}-{serial}",
            )
        except (ProtocolError, UnicodeDecodeError, ValueError) as exc:
            await self._write_response(writer, 400, {"error": str(exc)})
            return
        if self._draining:
            await self._write_response(
                writer, 503,
                {"error": "draining", "retry_after": 1},
                extra_headers=[("Retry-After", "1")],
            )
            return
        if self.admission is not None:
            verdict = self.admission.admit(command)
            if not verdict.admitted:
                await self._write_response(
                    writer, 503,
                    {
                        "error": "admission control shed this request",
                        "reason": verdict.reason,
                        "retry_after": verdict.retry_after,
                        "bound_ms": verdict.bound_ms,
                        "deadline_ms": verdict.deadline_ms,
                    },
                    extra_headers=[("Retry-After", str(verdict.retry_after))],
                )
                return
            self.admission.on_admit(command)
        self._inflight += 1
        started = time.monotonic()
        try:
            response = await self.batcher.submit(request)
        except Exception as exc:  # dispatch machinery failed, not the job
            response = Response(
                request_id=request.request_id, command=command,
                status=500, exit_code=2, stdout="",
                stderr=f"{type(exc).__name__}: {exc}",
            )
        finally:
            self._inflight -= 1
            if self.admission is not None:
                self.admission.on_complete(
                    command, time.monotonic() - started
                )
        obs.inc("serve.requests_total")
        await self._write_response(
            writer, response.status, response.to_json()
        )

    # -- introspection payloads ---------------------------------------------

    def _healthz_payload(self) -> dict:
        alive = self.pool.reap_and_respawn()
        pool_stats = self.pool.stats()
        healthy = alive >= 1 and not self._draining
        return {
            "status": "ok" if healthy else "degraded",
            "draining": self._draining,
            "workers": pool_stats["workers"],
            "workers_alive": alive,
            "respawns": pool_stats["respawns"],
            "inflight": self._inflight,
            "uptime_seconds": round(
                time.monotonic() - self.started_monotonic, 3
            ),
        }

    def _metrics_payload(self) -> dict:
        snap = obs.snapshot()
        histograms = {}
        for name, state in snap.histograms:
            histograms[name] = {
                "total": state.total,
                "sum": state.sum,
                "buckets": list(state.buckets),
                "counts": list(state.counts),
            }
        return {
            "serve": {
                "requests_total": self.requests_total,
                "inflight": self._inflight,
                "uptime_seconds": round(
                    time.monotonic() - self.started_monotonic, 3
                ),
                "pool": self.pool.stats(),
                "batching": self.batcher.stats(),
            },
            "admission": (
                self.admission.snapshot() if self.admission is not None else None
            ),
            "counters": dict(snap.counters),
            "gauges": dict(snap.gauges),
            "histograms": histograms,
        }

    async def _cache_stats_payload(self) -> dict:
        from repro.serve.pool import JOB_CACHE_STATS, PoolError

        loop = asyncio.get_running_loop()
        try:
            # Read from a worker: the warm caches live where the work
            # runs, not in the asyncio parent.
            return await loop.run_in_executor(
                self._executor,
                functools.partial(
                    self.pool.submit, JOB_CACHE_STATS, None, timeout=10.0
                ),
            )
        except PoolError:
            from repro.cache import cache_stats_payload

            return cache_stats_payload()


def run_server(config: ServeConfig) -> int:
    """Blocking entry point of ``repro serve``; returns the exit code."""
    # The daemon always records its own metrics — /metrics is a primary
    # endpoint, and recording never changes results (the obs contract).
    obs.enable()

    async def _main() -> int:
        server = AnalysisServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(server.drain())
            )
        await server.serve_until_stopped()
        return 0

    return asyncio.run(_main())


class ServerThread:
    """A daemon running on a background thread — the in-process harness
    tests and benchmarks drive (``with ServerThread(config) as srv:``)."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.server: AnalysisServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = None
        self._ready = None

    def __enter__(self) -> "ServerThread":
        import threading

        self._ready = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self.server = AnalysisServer(self.config)
            loop.run_until_complete(self.server.start())
            self._ready.set()
            loop.run_until_complete(self.server.serve_until_stopped())
            loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("serve thread failed to start")
        return self

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self.server is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(), self._loop
            )
            future.result(timeout=60.0)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

"""Micro-batching: coalesce concurrent compatible requests into one
resident-worker dispatch.

``analyze`` requests that share a :func:`repro.serve.protocol.batch_key`
(same options; specs may differ) and arrive within a few milliseconds of
each other are executed as one :func:`repro.rta.npfp.analyse_batch`
dispatch — one pipe round-trip, one ``batch_scope``, shared compiled
step tables across every cell.  Each caller still gets exactly the
response a solo dispatch would have produced; batching changes *when*
work is grouped, never what any request answers.

The batcher is purely asyncio-side: the first pending request of a key
arms a ``loop.call_later`` flush, a full batch flushes immediately, and
requests whose key is ``None`` (everything but ``analyze``) dispatch
alone without waiting.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Sequence

from repro import obs
from repro.serve.protocol import Request, Response, batch_key

#: How long the first request of a batch waits for company, in seconds.
#: Two milliseconds is far below any class deadline and far above the
#: asyncio scheduling jitter of concurrent arrivals.
DEFAULT_WINDOW_S = 0.002

#: Hard cap on coalesced requests per dispatch.
DEFAULT_MAX_BATCH = 8

#: A dispatch function: a compatible request group in, responses (in the
#: same order) out.  Runs in an executor thread — it blocks on the pool.
DispatchFn = Callable[[Sequence[Request]], Awaitable[list[Response]]]


class MicroBatcher:
    """Group compatible requests, dispatch groups, fan results back out."""

    def __init__(
        self,
        dispatch: DispatchFn,
        window_s: float = DEFAULT_WINDOW_S,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._dispatch = dispatch
        self.window_s = window_s
        self.max_batch = max_batch
        # key -> list of (request, future) awaiting the next flush
        self._pending: dict[str, list[tuple[Request, asyncio.Future]]] = {}
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._tasks: set[asyncio.Task] = set()
        self.batches_dispatched = 0
        self.requests_batched = 0

    async def submit(self, request: Request) -> Response:
        """The response for ``request``, via a solo or coalesced dispatch."""
        key = batch_key(request)
        if key is None or self.max_batch == 1:
            return (await self._dispatch([request]))[0]
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        group = self._pending.setdefault(key, [])
        group.append((request, future))
        if len(group) >= self.max_batch:
            self._flush(key)
        elif len(group) == 1:
            self._timers[key] = loop.call_later(
                self.window_s, self._flush, key
            )
        return await future

    def _flush(self, key: str) -> None:
        group = self._pending.pop(key, [])
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        if not group:
            return
        self.batches_dispatched += 1
        self.requests_batched += len(group)
        obs.inc("serve.batches_dispatched")
        obs.observe("serve.batch_size", len(group))
        task = asyncio.get_running_loop().create_task(self._run(group))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, group: list[tuple[Request, asyncio.Future]]) -> None:
        requests = [request for request, _ in group]
        try:
            responses = await self._dispatch(requests)
        except Exception as exc:
            for _, future in group:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), response in zip(group, responses):
            if not future.done():
                future.set_result(response)

    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight dispatches."""
        for key in list(self._pending):
            self._flush(key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    def stats(self) -> dict:
        return {
            "window_ms": self.window_s * 1000.0,
            "max_batch": self.max_batch,
            "batches_dispatched": self.batches_dispatched,
            "requests_batched": self.requests_batched,
            "pending": sum(len(g) for g in self._pending.values()),
        }

"""Wire types of the analysis service (see ``docs/serving.md``).

A request is one JSON document::

    {"command": "analyze" | "simulate" | "verify" | "lint",
     "spec": { ...deployment spec, repro.config format... },
     "options": { ...per-command knobs, all optional... },
     "request_id": "client-chosen identifier"}

and a response mirrors the offline CLI exactly::

    {"request_id": ..., "command": ..., "status": 200,
     "exit_code": 0, "stdout": "<the bytes the CLI would print>",
     "stderr": ""}

The ``stdout`` field is the byte-identity contract: for every supported
command it equals what ``python -m repro <command> <spec>`` (with the
same options) prints on stdout — the daemon changes *where* analyses
run, never what they answer.  Statuses follow HTTP: 200 (done, whatever
the analysis verdict — the verdict is ``exit_code``), 400 (malformed
request or spec), 500 (execution failed), 503 (admission control shed
the request; the HTTP layer adds ``Retry-After``).

Everything here is plain data: requests and responses are picklable
(they travel to resident pool workers over pipes) and JSON-serializable
(they travel to clients over HTTP).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

#: Commands the service executes, with the options each accepts.
#: Option values are validated loosely (type checks only) — the
#: execution layer re-uses the CLI's own handlers, which reject
#: nonsense the same way the CLI does.
COMMAND_OPTIONS: dict[str, dict[str, type]] = {
    "analyze": {"horizon": int, "kernel": bool, "cache": bool},
    "simulate": {
        "horizon": int, "runs": int, "seed": int, "intensity": float,
        "engine": str, "kernel": bool, "cache": bool,
    },
    "verify": {"depth": int, "engine": str, "cache": bool},
    "lint": {"source_name": str},
}

COMMANDS = tuple(sorted(COMMAND_OPTIONS))


class ProtocolError(Exception):
    """A request the protocol layer rejects (HTTP 400)."""


@dataclass(frozen=True)
class Request:
    """One analysis request, decoded and validated."""

    command: str
    spec: Mapping[str, Any]
    options: Mapping[str, Any] = field(default_factory=dict)
    request_id: str = ""

    def option(self, name: str, default: Any = None) -> Any:
        return self.options.get(name, default)


@dataclass(frozen=True)
class Response:
    """One analysis response; ``stdout`` carries the CLI-identical bytes."""

    request_id: str
    command: str
    status: int
    exit_code: int
    stdout: str
    stderr: str = ""

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "Response":
        return cls(
            request_id=payload.get("request_id", ""),
            command=payload.get("command", ""),
            status=int(payload.get("status", 500)),
            exit_code=int(payload.get("exit_code", 1)),
            stdout=payload.get("stdout", ""),
            stderr=payload.get("stderr", ""),
        )


def parse_request(body: bytes | str, request_id_fallback: str = "") -> Request:
    """Decode and validate one request body; raises :class:`ProtocolError`."""
    if isinstance(body, bytes):
        try:
            body = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request body is not UTF-8: {exc}") from exc
    try:
        document = json.loads(body) if body.strip() else {}
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request body is not JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ProtocolError("request body must be a JSON object")
    command = document.get("command")
    if command not in COMMAND_OPTIONS:
        raise ProtocolError(
            f"unknown command {command!r}; expected one of {', '.join(COMMANDS)}"
        )
    spec = document.get("spec")
    if not isinstance(spec, dict):
        raise ProtocolError("'spec' must be a JSON object (a deployment spec)")
    options = document.get("options", {})
    if not isinstance(options, dict):
        raise ProtocolError("'options' must be a JSON object")
    allowed = COMMAND_OPTIONS[command]
    for name, value in options.items():
        if name not in allowed:
            raise ProtocolError(
                f"option {name!r} is not valid for {command!r}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        expected = allowed[name]
        # bool is an int subclass; keep the check strict so e.g.
        # horizon=true is rejected rather than silently truthy.
        if expected is int and isinstance(value, bool):
            raise ProtocolError(f"option {name!r} must be an integer")
        if expected is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if not isinstance(value, expected):
            raise ProtocolError(
                f"option {name!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    request_id = document.get("request_id", request_id_fallback)
    if not isinstance(request_id, str):
        raise ProtocolError("'request_id' must be a string")
    return Request(
        command=command, spec=spec, options=dict(options), request_id=request_id
    )


def batch_key(request: Request) -> str | None:
    """The micro-batching compatibility key of ``request``.

    Two requests may share one resident-worker dispatch iff their keys
    are equal and non-``None``.  Only ``analyze`` requests batch — they
    are the cheap, high-volume class whose compiled step tables and
    pooled supplies :func:`repro.rta.npfp.analyse_batch` shares across
    cells; the spec itself is deliberately *not* part of the key
    (distinct deployments batch fine).  ``None`` means "dispatch alone".
    """
    if request.command != "analyze":
        return None
    options = json.dumps(
        dict(sorted(request.options.items())),
        sort_keys=True, separators=(",", ":"),
    )
    return f"analyze:{options}"


def encode_json(payload: Any) -> bytes:
    """Canonical JSON bytes for HTTP bodies (sorted keys, newline)."""
    return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")

"""RTA-informed admission control: the service schedules itself.

The daemon's request queue is exactly the object this repository
analyzes: sporadically arriving work classes (``analyze`` … ``simulate``)
with per-class costs, competing for ``K`` workers under per-class
deadlines.  So the admission controller does not guess with a magic
queue-length threshold — it builds a sporadic task set out of its own
observed traffic and runs the repo's response-time analysis
(:func:`repro.rta.npfp.analyse`, Thm. 4.2) over it:

* each request class becomes a :class:`~repro.model.task.Task` whose
  WCET is the (quantized) worst observed service time and whose arrival
  curve is a :class:`~repro.rta.curves.SporadicCurve` at the (quantized)
  **mean** inter-arrival separation over the observation window,
  widened by the worker count (each resident worker serves ~1/K of the
  stream) — the mean estimates the *sustained* rate, which is what a
  long-run schedulability verdict is about, while transient bursts are
  the backlog check's job;
* a request of class ``i`` is admitted only if the instantaneous
  backlog (admitted-but-unfinished cost ahead of it) leaves room for
  its own cost within its deadline **and** — once the class has a full
  observation window, so the curve estimate means something — the
  class's response-time bound ``R_i + J`` fits its deadline;
* *every* arrival is observed, shed ones included (arrival ≠
  admission): when clients back off, the measured rate decays and a
  previously overloaded class becomes admittable again;
* rejected requests get ``503`` with a ``Retry-After`` derived from the
  excess — shedding is *fast* (no queueing, no worker time) and *safe*
  (a shed request is never answered wrongly, only late-shifted).

Quantization (powers of two) keeps the synthetic task set piecewise
constant under noisy measurements, so RTA verdicts memoize well: the
analysis reruns only when traffic genuinely changes shape.

Everything takes an injectable ``clock`` so tests drive admission
decisions deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from math import ceil
from typing import Callable, Mapping, Sequence

from repro import obs

#: Time unit of the synthetic task set: one millisecond.
_MS = 1000.0

#: Sliding-window length of the per-class duration / arrival histories.
_HISTORY = 64

#: Memoized RTA verdicts (one per quantized traffic shape).
_RTA_MEMO_LIMIT = 128

#: Busy-window search horizon of the self-analysis, in ms.
_SELF_RTA_HORIZON = 600_000


@dataclass(frozen=True)
class ClassPolicy:
    """Admission policy of one request class.

    ``priority`` follows the repo convention (larger = higher);
    ``deadline_ms`` is the class's response-time budget — the bound the
    RTA check must fit; ``default_cost_ms`` seeds the cost estimate
    until real durations have been observed.
    """

    name: str
    priority: int
    deadline_ms: int
    default_cost_ms: int

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ValueError(f"class {self.name!r}: deadline must be positive")
        if self.default_cost_ms <= 0:
            raise ValueError(f"class {self.name!r}: default cost must be positive")


#: Interactive classes get tight deadlines and high priority; the heavy
#: batch-ish classes get room.  Priorities mirror "cheap preempts
#: expensive" — the NPFP ordering that keeps lint latency flat while a
#: verify burst drains.
DEFAULT_POLICIES: tuple[ClassPolicy, ...] = (
    ClassPolicy("lint", priority=4, deadline_ms=1_000, default_cost_ms=20),
    ClassPolicy("analyze", priority=3, deadline_ms=2_000, default_cost_ms=50),
    ClassPolicy("verify", priority=2, deadline_ms=10_000, default_cost_ms=500),
    ClassPolicy("simulate", priority=1, deadline_ms=30_000, default_cost_ms=2_000),
)


@dataclass(frozen=True)
class Verdict:
    """One admission decision."""

    admitted: bool
    reason: str
    retry_after: int = 0  # seconds, for the 503's Retry-After header
    bound_ms: int | None = None  # the RTA bound, when one was computed
    deadline_ms: int = 0


def _quantize_up(value: float) -> int:
    """Smallest power of two ≥ ``value`` (≥ 1)."""
    result = 1
    while result < value:
        result *= 2
    return result


def _quantize_down(value: float) -> int:
    """Largest power of two ≤ ``value`` (≥ 1)."""
    if value <= 1:
        return 1
    result = 1
    while result * 2 <= value:
        result *= 2
    return result


class AdmissionController:
    """Admit/shed decisions over the daemon's own request stream.

    Thread-safe; the HTTP layer calls :meth:`admit` before queueing a
    request, then :meth:`on_admit` / :meth:`on_complete` around its
    execution so the observed histograms keep feeding the model.
    """

    def __init__(
        self,
        workers: int,
        policies: Sequence[ClassPolicy] = DEFAULT_POLICIES,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError("admission needs at least 1 worker")
        self.workers = workers
        self.policies: dict[str, ClassPolicy] = {p.name: p for p in policies}
        self._clock = clock
        self._lock = threading.Lock()
        self._durations: dict[str, deque[float]] = {
            name: deque(maxlen=_HISTORY) for name in self.policies
        }
        self._arrivals: dict[str, deque[float]] = {
            name: deque(maxlen=_HISTORY) for name in self.policies
        }
        self._inflight: dict[str, int] = {name: 0 for name in self.policies}
        self._rta_memo: dict[tuple, dict[str, int | None]] = {}
        self.admitted = 0
        self.shed = 0

    # -- observation ---------------------------------------------------------

    def on_admit(self, class_name: str) -> None:
        """Mark an admitted request as queued (arrival was already
        recorded by :meth:`admit` — shed requests arrive too)."""
        with self._lock:
            self._inflight[class_name] += 1

    def on_complete(self, class_name: str, duration_s: float) -> None:
        """Record a finished request's service time."""
        with self._lock:
            self._durations[class_name].append(duration_s * _MS)
            self._inflight[class_name] = max(0, self._inflight[class_name] - 1)

    # -- the model -----------------------------------------------------------

    def _cost_ms(self, class_name: str) -> int:
        """Quantized cost estimate of one request of ``class_name``."""
        history = self._durations[class_name]
        observed = max(history) if history else self.policies[class_name].default_cost_ms
        return _quantize_up(max(1.0, observed))

    def _separation_ms(self, class_name: str) -> int:
        """Quantized mean inter-arrival separation of ``class_name``.

        The mean over the sliding window estimates the *sustained* rate
        (a one-shot burst has tiny minimum gaps but a modest mean; a
        steady overload has a tiny mean too).  With fewer than two
        observed arrivals the class is modeled at its deadline period —
        one request per budget window, the lightest load consistent
        with "this class exists".
        """
        arrivals = self._arrivals[class_name]
        if len(arrivals) < 2:
            return _quantize_down(self.policies[class_name].deadline_ms)
        span = arrivals[-1] - arrivals[0]
        mean_gap = span / (len(arrivals) - 1)
        return _quantize_down(max(1.0, mean_gap * _MS))

    def _traffic_key(self) -> tuple:
        """The quantized traffic shape — the RTA memo key."""
        return tuple(
            (name, self._cost_ms(name), self._separation_ms(name))
            for name in sorted(self.policies)
            if self._arrivals[name] or self._inflight[name]
        )

    def _self_rta(self, key: tuple) -> dict[str, int | None]:
        """Response-time bounds of the service's own task set (memoized).

        Per-class bound in ms, ``None`` where the class's busy window
        never closes (unschedulable at the current traffic shape).
        """
        cached = self._rta_memo.get(key)
        if cached is not None:
            return cached
        from repro.model.task import Task, TaskSystem
        from repro.rossl.client import RosslClient
        from repro.rta.curves import SporadicCurve
        from repro.rta.npfp import analyse
        from repro.timing.wcet import WcetModel

        tasks = []
        curves = {}
        for index, (name, cost_ms, separation_ms) in enumerate(key):
            tasks.append(
                Task(
                    name=name,
                    priority=self.policies[name].priority,
                    wcet=cost_ms,
                    type_tag=index,
                )
            )
            # Each resident worker serves ~1/K of the stream, so one
            # worker's view of the class is K× sparser.
            curves[name] = SporadicCurve(
                min_separation=separation_ms * self.workers
            )
        client = RosslClient.make(
            TaskSystem(tasks, curves), sockets=[0], policy="npfp"
        )
        # Dispatch overheads of the asyncio/queue layer are microseconds
        # against millisecond costs: the smallest legal WCET model.
        overheads = WcetModel(
            failed_read=2, success_read=2,
            selection=1, dispatch=1, completion=1, idling=1,
        )
        with obs.span("serve.admission_rta", classes=len(key)):
            analysis = analyse(client, overheads, horizon=_SELF_RTA_HORIZON)
        bounds: dict[str, int | None] = {}
        for name, _, _ in key:
            if analysis.bounds[name].schedulable:
                bounds[name] = analysis.response_time_bound(name)
            else:
                bounds[name] = None
        if len(self._rta_memo) >= _RTA_MEMO_LIMIT:
            self._rta_memo.clear()
        self._rta_memo[key] = bounds
        obs.inc("serve.admission_rta_runs")
        return bounds

    # -- the decision --------------------------------------------------------

    def admit(self, class_name: str) -> Verdict:
        """Decide whether one incoming request of ``class_name`` may queue."""
        policy = self.policies.get(class_name)
        if policy is None:
            return Verdict(admitted=True, reason="unmodeled class")
        with self._lock:
            # Every arrival feeds the model, shed ones included — the
            # arrival stream exists whether or not we serve it, and
            # observing rejections is what lets the rate estimate decay
            # back to admittable once clients back off.
            self._arrivals[class_name].append(self._clock())
            deadline = policy.deadline_ms
            cost = self._cost_ms(class_name)
            # Fast backlog check: everything already admitted and not
            # yet finished is (conservatively) ahead of this request on
            # the K workers; its own cost rides on top.
            backlog = sum(
                self._inflight[name] * self._cost_ms(name)
                for name in self.policies
            )
            wait_ms = backlog / self.workers + cost
            if wait_ms > deadline:
                self.shed += 1
                obs.inc("serve.requests_shed")
                excess_ms = wait_ms - deadline
                return Verdict(
                    admitted=False,
                    reason=(
                        f"backlog {backlog:.0f}ms across {self.workers} "
                        f"worker(s) leaves no room for a {cost}ms "
                        f"{class_name} within its {deadline}ms deadline"
                    ),
                    retry_after=max(1, ceil(excess_ms / 1000.0)),
                    deadline_ms=deadline,
                )
            # RTA check: at the observed sustained traffic shape, does
            # the class's response-time bound fit its deadline at all?
            # Only once the observation window is full — a half-window
            # rate estimate says "burst", not "sustained", and bursts
            # are already governed by the exact backlog check above.
            if len(self._arrivals[class_name]) < _HISTORY:
                self.admitted += 1
                obs.inc("serve.requests_admitted")
                return Verdict(
                    admitted=True,
                    reason=(
                        f"fits backlog; observation window warming "
                        f"({len(self._arrivals[class_name])}/{_HISTORY})"
                    ),
                    deadline_ms=deadline,
                )
            key = self._traffic_key()
            bounds = self._self_rta(key)
        bound = bounds.get(class_name)
        if bound is None or bound > deadline:
            with self._lock:
                self.shed += 1
            obs.inc("serve.requests_shed")
            if bound is None:
                reason = (
                    f"self-RTA: the {class_name} busy window never closes "
                    "at the current traffic shape"
                )
                retry_after = max(1, ceil(deadline / 1000.0))
            else:
                reason = (
                    f"self-RTA bound {bound}ms exceeds the {class_name} "
                    f"deadline {deadline}ms"
                )
                retry_after = max(1, ceil((bound - deadline) / 1000.0))
            return Verdict(
                admitted=False, reason=reason, retry_after=retry_after,
                bound_ms=bound, deadline_ms=deadline,
            )
        with self._lock:
            self.admitted += 1
        obs.inc("serve.requests_admitted")
        return Verdict(
            admitted=True, reason="fits", bound_ms=bound, deadline_ms=deadline
        )

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict:
        """The admission state for ``GET /metrics``."""
        with self._lock:
            classes: dict[str, Mapping] = {}
            for name, policy in sorted(self.policies.items()):
                history = self._durations[name]
                classes[name] = {
                    "priority": policy.priority,
                    "deadline_ms": policy.deadline_ms,
                    "cost_estimate_ms": self._cost_ms(name),
                    "min_separation_ms": self._separation_ms(name),
                    "observed_durations": len(history),
                    "inflight": self._inflight[name],
                }
            return {
                "workers": self.workers,
                "admitted": self.admitted,
                "shed": self.shed,
                "rta_memo_entries": len(self._rta_memo),
                "classes": classes,
            }

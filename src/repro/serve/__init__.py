"""repro.serve — analysis-as-a-service (see ``docs/serving.md``).

The long-lived counterpart of the CLI: a stdlib-only asyncio daemon
(``repro serve``) that keeps the expensive state — memo caches,
compiled step tables, pooled supplies, built engines — warm in a
resident worker pool and answers ``analyze`` / ``simulate`` /
``verify`` / ``lint`` over HTTP/JSON, byte-identically to the offline
CLI.  Concurrent compatible analyze calls coalesce into
``analyse_batch`` dispatches, and an admission controller applies the
repository's *own* response-time analysis to the service's request
queue, shedding requests whose bound exceeds their class deadline with
a fast ``503 + Retry-After``.

Layers:

* :mod:`repro.serve.protocol`  — request/response wire types;
* :mod:`repro.serve.pool`      — the resident worker pool + execution;
* :mod:`repro.serve.batching`  — the micro-batching queue;
* :mod:`repro.serve.admission` — RTA-informed admission control;
* :mod:`repro.serve.server`    — the asyncio HTTP daemon;
* :mod:`repro.serve.client`    — the thin stdlib client.
"""

from repro.serve.admission import (
    DEFAULT_POLICIES,
    AdmissionController,
    ClassPolicy,
    Verdict,
)
from repro.serve.batching import MicroBatcher
from repro.serve.client import ServeClient, ServeConnectionError
from repro.serve.pool import (
    PoolError,
    PoolShutDown,
    ResidentPool,
    WorkerCrashed,
    WorkerTimeout,
    execute_batch,
    execute_request,
)
from repro.serve.protocol import (
    COMMAND_OPTIONS,
    ProtocolError,
    Request,
    Response,
    batch_key,
    parse_request,
)
from repro.serve.server import (
    AnalysisServer,
    ServeConfig,
    ServerThread,
    run_server,
)

__all__ = [
    "COMMAND_OPTIONS",
    "AdmissionController",
    "AnalysisServer",
    "ClassPolicy",
    "DEFAULT_POLICIES",
    "MicroBatcher",
    "PoolError",
    "PoolShutDown",
    "ProtocolError",
    "Request",
    "ResidentPool",
    "Response",
    "ServeClient",
    "ServeConfig",
    "ServeConnectionError",
    "ServerThread",
    "Verdict",
    "WorkerCrashed",
    "WorkerTimeout",
    "batch_key",
    "execute_batch",
    "execute_request",
    "parse_request",
    "run_server",
]

"""Thin stdlib client for the analysis daemon.

One connection per call (the server closes connections anyway), JSON in
and out, no retries — callers own their retry policy because the 503
payload carries the server-computed ``retry_after``.  Used by the
``repro client`` CLI subcommand, the test suite, and the E21 benchmark.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping


class ServeConnectionError(Exception):
    """The daemon could not be reached (or answered garbage)."""


class ServeClient:
    """Calls against one ``repro serve`` instance."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8750,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, dict]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"}
            try:
                connection.request(method, path, body=body, headers=headers)
                raw = connection.getresponse()
                payload_bytes = raw.read()
                status = raw.status
            except (OSError, http.client.HTTPException) as exc:
                raise ServeConnectionError(
                    f"cannot reach repro serve at "
                    f"{self.host}:{self.port}: {exc}"
                ) from exc
        finally:
            connection.close()
        try:
            payload = json.loads(payload_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeConnectionError(
                f"non-JSON answer from {self.host}:{self.port} "
                f"(status {status}): {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ServeConnectionError(
                f"unexpected answer shape from {self.host}:{self.port}"
            )
        return status, payload

    # -- analysis calls ------------------------------------------------------

    def call(
        self,
        command: str,
        spec: Mapping[str, Any],
        options: Mapping[str, Any] | None = None,
        request_id: str = "",
    ) -> tuple[int, dict]:
        """POST one analysis request; returns ``(http_status, payload)``.

        On 200 the payload is the response document (``stdout`` holds
        the CLI-identical bytes, ``exit_code`` the CLI's exit code); on
        503 it carries the admission verdict and ``retry_after``.
        """
        document: dict[str, Any] = {"command": command, "spec": dict(spec)}
        if options:
            document["options"] = dict(options)
        if request_id:
            document["request_id"] = request_id
        body = json.dumps(document).encode("utf-8")
        return self._request("POST", f"/v1/{command}", body)

    def analyze(self, spec, options=None, request_id=""):
        return self.call("analyze", spec, options, request_id)

    def simulate(self, spec, options=None, request_id=""):
        return self.call("simulate", spec, options, request_id)

    def verify(self, spec, options=None, request_id=""):
        return self.call("verify", spec, options, request_id)

    def lint(self, spec, options=None, request_id=""):
        return self.call("lint", spec, options, request_id)

    # -- introspection -------------------------------------------------------

    def healthz(self) -> dict:
        status, payload = self._request("GET", "/healthz")
        if status != 200:
            raise ServeConnectionError(f"/healthz answered {status}")
        return payload

    def metrics(self) -> dict:
        status, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ServeConnectionError(f"/metrics answered {status}")
        return payload

    def cache_stats(self) -> dict:
        status, payload = self._request("GET", "/cache/stats")
        if status != 200:
            raise ServeConnectionError(f"/cache/stats answered {status}")
        return payload

"""Resident worker pool: long-lived analysis processes with warm caches.

The fork-pool runner (:mod:`repro.analysis.parallel`) builds a fresh
process pool per campaign — BENCH_parallel.json's E18 measures that
spin-up as a net *loss* on small boxes.  The daemon cannot afford that
per request, so this module keeps ``K`` worker processes alive for the
life of the service:

* each worker's in-process caches stay **warm across requests** — the
  MemoCurve step cache, the compiled step tables and pooled supplies of
  :mod:`repro.rta.kernel`, per-client engines, and (when enabled) the
  persistent result store;
* batched analyze dispatches run under
  :func:`repro.rta.npfp.analyse_batch`, sharing compiled tables across
  every cell of the batch;
* the PR 4 failure machinery is adapted to long-lived workers: a
  request that exceeds its timeout gets its worker **killed and
  respawned** (a hung resident worker would otherwise poison every
  later request), a worker that dies mid-request is respawned and the
  request retried once on the fresh process — the quarantine idea,
  reshaped: a deterministically-crashing request exhausts its own
  retry, never another request's worker.

Execution reuses the CLI's own rendering helpers
(:func:`repro.cli.format_npfp_analysis` et al.), which is what makes
daemon responses byte-identical to offline CLI stdout by construction.
"""

from __future__ import annotations

import hashlib
import io
import multiprocessing
import os
import pickle
import queue
import threading
from contextlib import redirect_stderr
from typing import Any, Callable, Sequence

from repro import obs
from repro.config import SpecError, parse_deployment
from repro.serve.protocol import Request, Response

#: Worker-side job kinds.
JOB_BATCH = "batch"
JOB_CAMPAIGN_CHUNK = "campaign_chunk"
JOB_CACHE_STATS = "cache_stats"
JOB_DIST_SHARD = "dist_shard"
JOB_PING = "ping"
JOB_STOP = "stop"

#: Per-worker engine cache bound — engines are rebuilt (cheaply, the
#: parse/typecheck/compile is per deployment) past this many distinct
#: (engine, client) pairs.
_ENGINE_CACHE_LIMIT = 32


class PoolError(Exception):
    """Base for resident-pool dispatch failures."""


class WorkerCrashed(PoolError):
    """The worker died before answering; it has been respawned."""


class WorkerTimeout(PoolError):
    """The job exceeded its timeout; the worker was killed and respawned."""


class PoolShutDown(PoolError):
    """The pool is no longer accepting work."""


# -- request execution (worker side) ----------------------------------------

_ENGINE_CACHE: dict = {}


def _cached_engine(engine_name: str, client):
    """The worker's engine for ``(engine_name, client)``, built once."""
    from repro.engine import create_engine, resolve_engine_name

    name = resolve_engine_name(engine_name)
    key = (name, hashlib.sha256(pickle.dumps(client)).hexdigest())
    engine = _ENGINE_CACHE.get(key)
    if engine is None:
        if len(_ENGINE_CACHE) >= _ENGINE_CACHE_LIMIT:
            _ENGINE_CACHE.clear()
        with obs.span("serve.engine_build", engine=name):
            engine = create_engine(name, client)
        _ENGINE_CACHE[key] = engine
        obs.inc("serve.engine_builds")
    else:
        obs.inc("serve.engine_cache_hits")
    return engine


def _store_for(request: Request):
    """The persistent result store, when the request opted in."""
    if not request.option("cache", False):
        return None
    from repro.cache import default_store

    return default_store()


def _error_response(request: Request, status: int, message: str) -> Response:
    return Response(
        request_id=request.request_id,
        command=request.command,
        status=status,
        exit_code=2,
        stdout="",
        stderr=message,
    )


def _exec_analyze(request: Request, deployment, analysis=None) -> Response:
    from repro.cli import format_edf_analysis, format_npfp_analysis
    from repro.rta.npfp import analyse

    client, wcet = deployment.client, deployment.wcet
    horizon = request.option("horizon", 1_000_000)
    kernel = request.option("kernel")
    if client.policy == "edf":
        from repro.edf import edf_analysis

        result = edf_analysis(client, wcet, horizon=horizon, kernel=kernel)
        text, code = format_edf_analysis(result)
    else:
        if analysis is None:
            store = _store_for(request)
            if store is not None:
                from repro.cache import cached_analyse

                analysis = cached_analyse(
                    client, wcet, horizon, store, kernel=kernel
                )
            else:
                analysis = analyse(client, wcet, horizon=horizon, kernel=kernel)
        text, code = format_npfp_analysis(analysis)
    return Response(
        request_id=request.request_id, command="analyze",
        status=200, exit_code=code, stdout=text,
    )


def _exec_simulate(request: Request, deployment) -> Response:
    from repro.analysis.adequacy import run_adequacy_campaign

    client, wcet = deployment.client, deployment.wcet
    if client.policy == "edf":
        return _error_response(
            request, 400,
            "simulate currently drives the NPFP analysis pipeline; "
            "EDF specs are checked with 'analyze'",
        )
    report = run_adequacy_campaign(
        client,
        wcet,
        horizon=request.option("horizon", 100_000),
        runs=request.option("runs", 5),
        seed=request.option("seed", 0),
        intensity=request.option("intensity", 1.0),
        engine=request.option("engine") or deployment.engine,
        jobs=1,  # the worker *is* the parallelism; no nested pools
        cache=_store_for(request),
        kernel=request.option("kernel"),
    )
    return Response(
        request_id=request.request_id, command="simulate",
        status=200, exit_code=0 if report.ok else 1,
        stdout=report.table() + "\n",
    )


def _exec_verify(request: Request, deployment) -> Response:
    from repro.cli import format_verification, verification_payloads
    from repro.verification.model_check import explore

    client = deployment.client
    payloads = verification_payloads(client)
    depth = request.option("depth", 4)
    engine = request.option("engine", "minic")
    store = _store_for(request)
    if store is not None:
        from repro.cache import cached_explore

        report = cached_explore(
            client, payloads, max_reads=depth,
            implementation=engine, jobs=1, store=store,
        )
    else:
        report = explore(
            client, payloads, max_reads=depth, implementation=engine, jobs=1
        )
    text, code = format_verification(report)
    return Response(
        request_id=request.request_id, command="verify",
        status=200, exit_code=code, stdout=text,
    )


def _exec_lint(request: Request, deployment) -> Response:
    from repro.lang.analysis import analyze_client

    source_name = request.option("source_name", "<request>")
    report = analyze_client(deployment.client, source_name=source_name)
    return Response(
        request_id=request.request_id, command="lint",
        status=200, exit_code=report.exit_code(False),
        stdout=report.to_json() + "\n",
    )


_EXECUTORS: dict[str, Callable] = {
    "analyze": _exec_analyze,
    "simulate": _exec_simulate,
    "verify": _exec_verify,
    "lint": _exec_lint,
}


def execute_request(request: Request) -> Response:
    """Execute one request; never raises — failures become responses."""
    try:
        deployment = parse_deployment(request.spec)
    except SpecError as exc:
        return _error_response(request, 400, f"error: {exc}")
    sink = io.StringIO()
    try:
        # Stray diagnostics (cache notes, campaign elapsed lines) go to
        # the response's stderr field, exactly as the CLI sends them to
        # the terminal's stderr; stdout stays reserved for the result.
        with obs.span("serve.request", command=request.command), \
                redirect_stderr(sink):
            response = _EXECUTORS[request.command](request, deployment)
    except Exception as exc:  # a bug, not a bad request
        obs.inc("serve.request_errors")
        return _error_response(
            request, 500, f"{type(exc).__name__}: {exc}"
        )
    if sink.getvalue() and not response.stderr:
        response = Response(
            request_id=response.request_id, command=response.command,
            status=response.status, exit_code=response.exit_code,
            stdout=response.stdout, stderr=sink.getvalue(),
        )
    return response


def execute_batch(requests: Sequence[Request]) -> list[Response]:
    """Execute a compatible batch in one dispatch.

    NPFP ``analyze`` requests are analysed through
    :func:`repro.rta.npfp.analyse_batch` — one batch scope, shared
    compiled step tables and pooled supplies across every cell; all
    other requests (EDF analyses included) run individually inside the
    same pinned scope.  Per-request results are byte-identical to solo
    execution: ``analyse_batch`` is the same solver with shared state.
    """
    from repro.rta import kernel as step_kernel

    if len(requests) == 1:
        return [execute_request(requests[0])]
    obs.inc("serve.batches")
    obs.observe("serve.batch_size", len(requests))
    responses: dict[int, Response] = {}
    analyzable: list[tuple[int, Request, Any]] = []
    with step_kernel.batch_scope():
        for index, request in enumerate(requests):
            if request.command != "analyze":
                responses[index] = execute_request(request)
                continue
            try:
                deployment = parse_deployment(request.spec)
            except SpecError as exc:
                responses[index] = _error_response(
                    request, 400, f"error: {exc}"
                )
                continue
            if deployment.client.policy == "edf" or request.option("cache", False):
                responses[index] = execute_request(request)
            else:
                analyzable.append((index, request, deployment))
        if analyzable:
            from repro.rta.npfp import analyse_batch

            first = analyzable[0][1]
            horizon = first.option("horizon", 1_000_000)
            kernel = first.option("kernel")
            try:
                with obs.span("serve.analyse_batch", cells=len(analyzable)):
                    analyses = analyse_batch(
                        [d for _, _, d in analyzable],
                        horizon=horizon,
                        kernel=kernel,
                    )
            except Exception as exc:
                for index, request, _ in analyzable:
                    responses[index] = _error_response(
                        request, 500, f"{type(exc).__name__}: {exc}"
                    )
            else:
                for (index, request, deployment), analysis in zip(
                    analyzable, analyses
                ):
                    responses[index] = _exec_analyze(
                        request, deployment, analysis=analysis
                    )
    return [responses[index] for index in range(len(requests))]


# -- campaign chunks (satellite of E18: warm-pool campaigns) ----------------


def _execute_campaign_chunk(setup: tuple, indices: Sequence[int]) -> list:
    """One adequacy-campaign chunk on a resident worker.

    Mirrors :func:`repro.analysis.parallel._campaign_chunk`, except the
    engine comes from the worker's warm cache instead of a per-pool
    initializer — the whole point of keeping the workers resident.
    """
    from repro.analysis.adequacy import adequacy_run

    (client, wcet, analysis, horizon, runs,
     seed_root, intensity, adversarial_fraction, engine_name) = setup
    engine = _cached_engine(engine_name, client)
    # The registry pins engines to their client by *identity*; chunks
    # arrive with fresh unpickled (value-equal) copies, so run against
    # the cached engine's own client.
    client = engine.client
    with obs.span("campaign.chunk", pid=os.getpid(), runs=len(indices)):
        return [
            adequacy_run(
                client, wcet, analysis, horizon, runs, index,
                seed_root=seed_root, intensity=intensity,
                adversarial_fraction=adversarial_fraction, engine=engine,
            )
            for index in indices
        ]


# -- the worker process -----------------------------------------------------


def _worker_main(conn, obs_enabled: bool) -> None:
    """Resident worker loop: recv job, execute, send (id, status, result,
    obs-delta) until the pipe closes or a stop job arrives."""
    from repro.analysis.parallel import init_worker_obs

    init_worker_obs(obs_enabled)
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            break
        job_id, kind, payload = job
        if kind == JOB_STOP:
            try:
                conn.send((job_id, "ok", None, None))
            except (BrokenPipeError, OSError):
                pass
            break
        before = obs.snapshot() if obs.enabled() else None
        try:
            if kind == JOB_PING:
                result: Any = os.getpid()
            elif kind == JOB_BATCH:
                result = execute_batch(payload)
            elif kind == JOB_CAMPAIGN_CHUNK:
                result = _execute_campaign_chunk(*payload)
            elif kind == JOB_DIST_SHARD:
                from repro.dist.fabric import execute_dist_shard

                result = execute_dist_shard(*payload)
            elif kind == JOB_CACHE_STATS:
                from repro.cache import cache_stats_payload

                result = cache_stats_payload()
            else:
                raise ValueError(f"unknown job kind {kind!r}")
            delta = obs.snapshot().diff(before) if before is not None else None
            conn.send((job_id, "ok", result, delta))
        except Exception as exc:
            try:
                conn.send(
                    (job_id, "error", f"{type(exc).__name__}: {exc}", None)
                )
            except (BrokenPipeError, OSError, TypeError):
                break


class _Worker:
    """Parent-side handle of one resident worker process."""

    __slots__ = ("proc", "conn")

    def __init__(self, context, obs_enabled: bool) -> None:
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.proc = context.Process(
            target=_worker_main,
            args=(child_conn, obs_enabled),
            daemon=True,
            name="repro-serve-worker",
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn

    @property
    def pid(self) -> int | None:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, AttributeError, ValueError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass

    def join(self, timeout: float | None = None) -> None:
        self.proc.join(timeout)


class ResidentPool:
    """``K`` long-lived workers behind a thread-safe dispatch façade.

    ``submit`` hands one job to an idle worker and blocks until the
    answer (or the timeout) — callers queue on the idle-worker queue,
    which is exactly the queue the admission controller models.  Thread
    safe: the HTTP layer calls it from executor threads, the campaign
    runner from a thread per chunk.
    """

    def __init__(
        self,
        workers: int = 2,
        request_timeout: float | None = None,
        obs_enabled: bool | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a resident pool needs at least 1 worker")
        self.workers = workers
        self.request_timeout = request_timeout
        self._obs_enabled = obs_enabled
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._idle: queue.Queue[_Worker] = queue.Queue()
        self._lock = threading.Lock()
        self._live: set[_Worker] = set()
        self._job_counter = 0
        self._started = False
        self._closed = False
        self.respawns = 0
        self.jobs_ok = 0
        self.jobs_failed = 0
        self.timeouts = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ResidentPool":
        with self._lock:
            if self._started:
                return self
            self._started = True
            enabled = (
                obs.enabled() if self._obs_enabled is None else self._obs_enabled
            )
            self._obs_enabled = enabled
            for _ in range(self.workers):
                worker = _Worker(self._context, enabled)
                self._live.add(worker)
                self._idle.put(worker)
        return self

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker; idempotent.  Graceful first (stop job on
        the idle ones), then kill whatever is left."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            live = list(self._live)
            self._live.clear()
        # Drain the idle queue so no submit can grab a dying worker.
        while True:
            try:
                worker = self._idle.get_nowait()
            except queue.Empty:
                break
            try:
                self._job_counter += 1
                worker.conn.send((self._job_counter, JOB_STOP, None))
            except (BrokenPipeError, OSError):
                pass
        for worker in live:
            worker.join(timeout)
            if worker.alive():
                worker.kill()
                worker.join(1.0)

    def __enter__(self) -> "ResidentPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- health --------------------------------------------------------------

    def worker_pids(self) -> list[int]:
        with self._lock:
            return sorted(w.pid for w in self._live if w.pid is not None)

    def reap_and_respawn(self) -> int:
        """Replace dead idle workers; returns how many are alive now.

        Called by the health endpoint so a killed worker is repaired
        proactively, not on the next unlucky request.
        """
        repaired: list[_Worker] = []
        stale: list[_Worker] = []
        while True:
            try:
                worker = self._idle.get_nowait()
            except queue.Empty:
                break
            if worker.alive():
                repaired.append(worker)
            else:
                stale.append(worker)
        for worker in stale:
            repaired.append(self._respawn(worker))
        for worker in repaired:
            self._idle.put(worker)
        with self._lock:
            return sum(1 for w in self._live if w.alive())

    def stats(self) -> dict:
        with self._lock:
            alive = sum(1 for w in self._live if w.alive())
        return {
            "workers": self.workers,
            "alive": alive,
            "respawns": self.respawns,
            "jobs_ok": self.jobs_ok,
            "jobs_failed": self.jobs_failed,
            "timeouts": self.timeouts,
        }

    # -- dispatch ------------------------------------------------------------

    def _respawn(self, worker: _Worker) -> _Worker:
        worker.kill()
        with self._lock:
            self._live.discard(worker)
            if self._closed:
                raise PoolShutDown("resident pool is shut down")
            fresh = _Worker(self._context, bool(self._obs_enabled))
            self._live.add(fresh)
            self.respawns += 1
        obs.inc("serve.worker_respawns")
        return fresh

    def submit(self, kind: str, payload: Any, timeout: float | None = None):
        """Run one job on an idle worker; blocks for a free worker, then
        for the answer.  Raises :class:`WorkerTimeout` /
        :class:`WorkerCrashed` after repairing the pool."""
        if not self._started:
            self.start()
        if self._closed:
            raise PoolShutDown("resident pool is shut down")
        timeout = self.request_timeout if timeout is None else timeout
        worker = self._idle.get()
        if self._closed:
            raise PoolShutDown("resident pool is shut down")
        # A worker that died while idle (killed out-of-band) is replaced
        # here, before dispatch — it never costs the caller an attempt.
        while not worker.alive():
            worker = self._respawn(worker)
        with self._lock:
            self._job_counter += 1
            job_id = self._job_counter
        try:
            worker.conn.send((job_id, kind, payload))
            if timeout is not None and not worker.conn.poll(timeout):
                raise WorkerTimeout(
                    f"job exceeded {timeout:.1f}s; worker killed"
                )
            reply_id, status, result, delta = worker.conn.recv()
        except WorkerTimeout:
            self.timeouts += 1
            self.jobs_failed += 1
            obs.inc("serve.worker_timeouts")
            self._idle.put(self._respawn(worker))
            raise
        except (BrokenPipeError, EOFError, OSError) as exc:
            self.jobs_failed += 1
            self._idle.put(self._respawn(worker))
            raise WorkerCrashed(
                f"worker died before answering ({type(exc).__name__})"
            ) from exc
        self._idle.put(worker)
        if delta is not None:
            obs.merge_snapshot(delta)
        if status != "ok":
            self.jobs_failed += 1
            raise PoolError(str(result))
        if reply_id != job_id:
            # A stale answer can only follow a protocol bug; treat the
            # worker as corrupted rather than mis-attribute results.
            self._idle.get_nowait()
            self._idle.put(self._respawn(worker))
            raise PoolError(f"job id mismatch: sent {job_id}, got {reply_id}")
        self.jobs_ok += 1
        return result

    def submit_batch(
        self,
        requests: Sequence[Request],
        timeout: float | None = None,
        retries: int = 1,
    ) -> list[Response]:
        """Execute a request batch, retrying once on a fresh worker if
        the first one crashes; failures degrade to error responses so
        the HTTP layer always has something to send."""
        attempts = 1 + max(0, retries)
        last: PoolError | None = None
        for attempt in range(attempts):
            try:
                return self.submit(JOB_BATCH, list(requests), timeout=timeout)
            except WorkerTimeout as exc:
                last = exc
                break  # a timed-out job blew its deadline; don't re-run it
            except (WorkerCrashed, PoolError) as exc:
                if isinstance(exc, PoolShutDown):
                    raise
                last = exc
        detail = f"error: request execution failed ({last})"
        return [
            Response(
                request_id=request.request_id, command=request.command,
                status=500, exit_code=2, stdout="", stderr=detail,
            )
            for request in requests
        ]

    def map_campaign_chunks(
        self,
        setup: tuple,
        chunks: Sequence[Sequence[int]],
        timeout: float | None = None,
        retries: int = 1,
    ) -> tuple[list, tuple]:
        """Adequacy-campaign chunks across the resident workers.

        The resident analog of
        :func:`repro.analysis.parallel.pool_map_chunks`: per-chunk
        results in chunk order (``None`` where a chunk failed past its
        retry budget) plus :class:`ShardFailure` records.  Retries run
        on freshly respawned workers, so a deterministic crasher
        exhausts only its own budget.
        """
        from concurrent.futures import ThreadPoolExecutor

        from repro.analysis.parallel import ShardFailure

        max_attempts = 1 + max(0, retries)
        results: list = [None] * len(chunks)
        failures: list = []

        def run_chunk(chunk_index: int):
            reason = detail = ""
            for _ in range(max_attempts):
                try:
                    results[chunk_index] = self.submit(
                        JOB_CAMPAIGN_CHUNK,
                        (setup, list(chunks[chunk_index])),
                        timeout=timeout,
                    )
                    return
                except WorkerTimeout:
                    reason = "timeout"
                    detail = (
                        "chunk exceeded the per-chunk timeout; worker killed"
                    )
                    obs.inc("parallel.worker_failures")
                except WorkerCrashed:
                    reason = "crash"
                    detail = "worker process died before the chunk completed"
                    obs.inc("parallel.worker_failures")
                except PoolError as exc:
                    if isinstance(exc, PoolShutDown):
                        raise
                    reason = "error"
                    detail = str(exc)
                    obs.inc("parallel.worker_failures")
            failures.append(
                ShardFailure(
                    chunk_index=chunk_index,
                    attempts=max_attempts,
                    reason=reason,
                    detail=detail,
                )
            )

        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            list(executor.map(run_chunk, range(len(chunks))))
        if failures:
            obs.inc("parallel.shards_failed", len(failures))
        return results, tuple(sorted(failures, key=lambda f: f.chunk_index))

"""Schedulability analysis for non-preemptive EDF under restricted
supply.

The classic processor-demand criterion for non-preemptive EDF, lifted to
arrival curves, release jitter, and the overhead-induced supply
restriction of Rössl:

* release curves ``β_i(Δ) = α_i(Δ + J)`` and effective deadlines
  ``D'_i = D_i − J`` absorb the jitter (a job released late still owes
  its original absolute deadline);
* the *demand bound function* ``h(Δ) = Σ_i β_i(Δ − D'_i + 1) · C_i``
  counts work that is both released and due within a window of length
  ``Δ`` measured from a busy-window start;
* non-preemptive *blocking*: a job with a deadline beyond ``Δ`` may have
  just started: ``B(Δ) = max{C_k − 1 : D'_k > Δ}``;
* the system is schedulable if for every window length up to the busy
  bound ``L``:  ``B(Δ) + h(Δ) ≤ SBF(Δ)``.

The test is sufficient (deadline misses impossible when it passes);
tests validate this against adversarial EDF simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rossl.client import RosslClient
from repro.rta import kernel as step_kernel
from repro.rta.curves import ArrivalCurve, memoized_curve, release_curve
from repro.rta.jitter import JitterBounds, jitter_bound
from repro.rta.sbf import make_sbf
from repro.timing.wcet import WcetModel


@dataclass(frozen=True)
class EdfAnalysis:
    """Outcome of the NP-EDF schedulability test."""

    schedulable: bool
    jitter: JitterBounds
    busy_bound: int | None
    #: first window length at which demand exceeded supply (None if ok)
    failing_window: int | None
    #: per-task effective deadline D_i − J used by the test
    effective_deadlines: dict[str, int]


def edf_analysis(
    client: RosslClient,
    wcet: WcetModel,
    horizon: int = 200_000,
    *,
    kernel: bool | None = None,
) -> EdfAnalysis:
    """Run the demand-bound schedulability test.

    Every task must carry an arrival curve and a relative deadline.
    ``kernel`` selects the step-table kernel (``None``: process
    default); both paths return identical analyses — the kernel checks
    only the window lengths where demand or blocking can change, which
    provably include the first failing window (see docs/rta-kernel.md).
    """
    tasks = client.tasks
    if not tasks.has_curves:
        raise ValueError("every task needs an arrival curve for the analysis")
    jitter = jitter_bound(wcet, client.num_sockets)
    effective: dict[str, int] = {}
    betas: dict[str, ArrivalCurve] = {}
    for task in tasks:
        if task.deadline is None:
            raise ValueError(f"task {task.name!r} has no relative deadline")
        effective_deadline = task.deadline - jitter.bound
        if effective_deadline <= 0:
            # The jitter alone can consume the deadline: unschedulable.
            return EdfAnalysis(
                schedulable=False,
                jitter=jitter,
                busy_bound=None,
                failing_window=0,
                effective_deadlines={},
            )
        effective[task.name] = effective_deadline
        betas[task.name] = memoized_curve(
            release_curve(tasks.arrival_curve(task.name), jitter.bound)
        )
    tables = (
        step_kernel.compile_release_tables(tasks.tasks, betas)
        if step_kernel.kernel_enabled(kernel)
        else None
    )
    if tables is not None:
        sbf = step_kernel.shared_supply(
            tuple(tables[task.name] for task in tasks), wcet, client.num_sockets
        )
        curve_of = {name: table.value for name, table in tables.items()}
    else:
        sbf = make_sbf(tasks.tasks, betas, wcet, client.num_sockets)
        curve_of = betas

    # Busy bound: least L with all released work + blocking ≤ supply.
    max_blocking = max(0, max(t.wcet for t in tasks) - 1)
    busy_bound = None
    length = 1
    while length <= horizon:
        demand = max_blocking + sum(
            curve_of[t.name](length) * t.wcet for t in tasks
        )
        if demand <= sbf(length):
            busy_bound = length
            break
        nxt = sbf.inverse(demand, horizon)
        if nxt is None:
            break
        length = max(nxt, length + 1)
    if busy_bound is None:
        return EdfAnalysis(False, jitter, None, None, effective)

    # Demand-bound check over every window length up to the busy bound.
    # Windows shorter than the earliest effective deadline carry no due
    # work (h(Δ) = 0), so no job can miss within them — the classic
    # criterion starts at Δ = D_min.  The kernel reduces the scan to
    # the window lengths where demand or blocking can change: between
    # two such candidates the left side of the check is constant while
    # SBF is non-decreasing, so the first failing window (if any) is
    # always a candidate.
    if tables is not None:
        windows_to_check = step_kernel.edf_candidate_windows(
            tables, effective, tasks.tasks, busy_bound
        )
    else:
        windows_to_check = range(min(effective.values()), busy_bound + 1)
    for delta in windows_to_check:
        demand = 0
        for task in tasks:
            window = delta - effective[task.name] + 1
            if window > 0:
                demand += curve_of[task.name](window) * task.wcet
        if demand == 0:
            continue
        blocking = max(
            (t.wcet - 1 for t in tasks if effective[t.name] > delta),
            default=0,
        )
        if demand + max(0, blocking) > sbf(delta):
            return EdfAnalysis(False, jitter, busy_bound, delta, effective)
    return EdfAnalysis(True, jitter, busy_bound, None, effective)


def edf_schedulable(
    client: RosslClient,
    wcet: WcetModel,
    horizon: int = 200_000,
    *,
    kernel: bool | None = None,
) -> bool:
    """Boolean form of :func:`edf_analysis`."""
    return edf_analysis(client, wcet, horizon, kernel=kernel).schedulable


@dataclass
class EdfCampaignReport:
    """Outcome of an EDF deadline-miss campaign."""

    runs: int = 0
    jobs_checked: int = 0
    jobs_beyond_horizon: int = 0
    misses: list[tuple[str, int, int]] = None  # (task, arrival, completion|-1)

    def __post_init__(self) -> None:
        if self.misses is None:
            self.misses = []

    @property
    def ok(self) -> bool:
        return not self.misses


def run_edf_campaign(
    client: RosslClient,
    wcet: WcetModel,
    horizon: int,
    runs: int,
    seed: int = 0,
    intensity: float = 1.0,
) -> EdfCampaignReport:
    """Randomized EDF campaign: when the demand-bound test passes, no
    simulated job may miss its (in-horizon) deadline.

    The adversarial half of the campaign uses always-WCET timing.
    """
    import random

    from repro.edf.policy import deadline_of, with_deadline_payloads
    from repro.sim.simulator import UniformDurations, WcetDurations, simulate
    from repro.sim.workloads import generate_arrivals
    from repro.timing.timed_trace import job_arrival_times

    analysis = edf_analysis(client, wcet)
    if not analysis.schedulable:
        raise ValueError("EDF campaigns need a schedulable system")
    report = EdfCampaignReport()
    rng = random.Random(seed)
    for index in range(runs):
        base = generate_arrivals(
            client, horizon=max(1, horizon // 2), rng=rng, intensity=intensity
        )
        arrivals = with_deadline_payloads(base, client.tasks)
        policy = WcetDurations() if index % 2 == 0 else UniformDurations(rng)
        result = simulate(client, arrivals, wcet, horizon, durations=policy)
        completions = result.timed_trace.completions()
        report.runs += 1
        for job, t_arr in job_arrival_times(result.timed_trace, arrivals).items():
            deadline = deadline_of(job.data)
            if deadline >= horizon:
                report.jobs_beyond_horizon += 1
                continue
            report.jobs_checked += 1
            done = completions.get(job)
            if done is None or done > deadline:
                name = client.tasks.msg_to_task(job.data).name
                report.misses.append((name, t_arr, done if done else -1))
    return report

"""Non-preemptive EDF: the policy-transfer extension.

The paper notes (§5, §6) that parts of the development transfer to other
scheduling policies — ProKOS, the closest related work, verifies both FP
and EDF.  This package realizes the transfer for *earliest-deadline-
first* scheduling of Rössl:

* messages carry their **absolute deadline** in the second payload word
  (an event-driven, interrupt-free scheduler has no clock of its own;
  deadlines arrive in message headers, as they do in practice);
* EDF is then literally "fixed-priority with priority = −deadline": the
  scheduler core, the protocol STS, the trace machinery, the conversion,
  and the monitors are all reused unchanged with the EDF priority
  function (:func:`~repro.edf.policy.edf_priority`);
* the analysis side (:mod:`~repro.edf.analysis`) is a demand-bound-
  function schedulability test for non-preemptive EDF under restricted
  supply, reusing the release curves, jitter bound, and SBF of the NPFP
  analysis.
"""

from repro.edf.analysis import EdfAnalysis, edf_analysis, edf_schedulable
from repro.edf.policy import (
    EdfRosslModel,
    build_edf_rossl,
    deadline_of,
    edf_message,
    edf_priority,
    edf_source,
    with_deadline_payloads,
)

__all__ = [
    "EdfAnalysis",
    "EdfRosslModel",
    "build_edf_rossl",
    "deadline_of",
    "edf_analysis",
    "edf_message",
    "edf_priority",
    "edf_schedulable",
    "edf_source",
    "with_deadline_payloads",
]

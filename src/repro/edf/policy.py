"""The EDF scheduling policy for Rössl.

Payload convention: ``(type_tag, absolute_deadline, …)``.  The priority
of a message is the *negation* of its deadline — earliest deadline
first is then exactly "highest priority first", so the NPFP scheduler
core, trace validity, and marker specs are reused verbatim with
:func:`edf_priority` as the priority function.

The MiniC side makes the same move: :func:`edf_source` generates a
translation unit whose ``job_priority`` returns ``0 - j->data[1]``; the
scheduler core (``npfp_enqueue``/``npfp_dequeue``/``fds_run``) is
byte-for-byte the one verified for NPFP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lang.parser import parse_program
from repro.lang.typecheck import TypedProgram, typecheck
from repro.model.message import Message, MsgData
from repro.model.task import TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.runtime import RosslModel
from repro.rossl.source import DEFAULT_MSG_CAP, _SCHEDULER_CORE

if TYPE_CHECKING:  # pragma: no cover
    from repro.timing.arrivals import ArrivalSequence


def deadline_of(data: MsgData) -> int:
    """The absolute deadline a payload carries (second word)."""
    if len(data) < 2:
        raise ValueError(
            f"EDF payloads carry (tag, deadline, …); got {data}"
        )
    return data[1]


def edf_priority(data: MsgData) -> int:
    """EDF as a priority function: earlier deadline = higher priority."""
    return -deadline_of(data)


def edf_message(tasks: TaskSystem, task_name: str, deadline: int, *payload: int) -> Message:
    """A message announcing an EDF job: tag, absolute deadline, payload."""
    task = tasks.by_name(task_name)
    return Message((task.type_tag, deadline, *payload))


class EdfRosslModel(RosslModel):
    """Rössl with non-preemptive EDF selection.

    Identical to the NPFP reference model except that ``npfp_dequeue``
    compares message deadlines instead of task priorities (FIFO among
    equal deadlines, matching the MiniC scan)."""

    def _npfp_dequeue(self):
        if not self._queue:
            return None
        best_index = 0
        best_priority = edf_priority(self._queue[0].data)
        for i in range(1, len(self._queue)):
            priority = edf_priority(self._queue[i].data)
            if priority > best_priority:
                best_index, best_priority = i, priority
        return self._queue.pop(best_index)


def edf_client_source(client: RosslClient) -> str:
    """The EDF client part: deadline-based priority, sockets, ``main``."""
    priority_table = (
        "// EDF: priority is the negated absolute deadline carried in\n"
        "// the message's second word.\n"
        "int task_priority(int type) {\n"
        "    return 0;  // unused under EDF\n"
        "}\n"
        "\n"
        "int msg_deadline(int *data, int len) {\n"
        "    return data[1];\n"
        "}\n"
    )
    socket_setup = "\n".join(
        f"    fds.socks[{index}] = {sock};"
        for index, sock in enumerate(client.sockets)
    )
    main = (
        "void main() {\n"
        "    struct fd_scheduler fds;\n"
        "    fds.sched.queue = NULL;\n"
        f"    fds.nsocks = {client.num_sockets};\n"
        f"{socket_setup}\n"
        "    fds_run(&fds);\n"
        "}\n"
    )
    return priority_table + "\n" + main


_NPFP_PRIORITY = (
    "int job_priority(struct job *j) {\n"
    "    return task_priority(msg_identify_type(j->data, j->len));\n"
    "}"
)

_EDF_PRIORITY = (
    "int job_priority(struct job *j) {\n"
    "    return 0 - msg_deadline(j->data, j->len);\n"
    "}"
)


def edf_source(client: RosslClient, msg_cap: int = DEFAULT_MSG_CAP) -> str:
    """The full EDF translation unit: the unchanged scheduler core with
    a deadline-based ``job_priority``."""
    core = _SCHEDULER_CORE.format(msg_cap=msg_cap, nsocks=client.num_sockets)
    # Swap the job_priority body: negated deadline instead of task table.
    if _NPFP_PRIORITY not in core:  # pragma: no cover - template drift guard
        raise AssertionError("scheduler core template changed; update EDF swap")
    core = core.replace(_NPFP_PRIORITY, _EDF_PRIORITY)
    return edf_client_source(client) + "\n" + core


def with_deadline_payloads(
    arrivals: "ArrivalSequence", tasks: TaskSystem
) -> "ArrivalSequence":
    """Rewrite arrival payloads to the EDF convention.

    Each payload becomes ``(tag, arrival_time + D_task, rest…)`` — the
    absolute deadline travels in the message, as a clock-less scheduler
    requires.  Lets the curve-conformant NPFP workload generators be
    reused for EDF experiments.
    """
    from repro.timing.arrivals import Arrival, ArrivalSequence

    rewritten = []
    for a in arrivals:
        task = tasks.msg_to_task(a.data)
        if task.deadline is None:
            raise ValueError(f"task {task.name!r} has no relative deadline")
        rewritten.append(
            Arrival(a.time, a.sock, (a.data[0], a.time + task.deadline) + a.data[1:])
        )
    return ArrivalSequence(rewritten)


def build_edf_rossl(client: RosslClient, msg_cap: int = DEFAULT_MSG_CAP) -> TypedProgram:
    """Parse and typecheck the EDF scheduler for ``client``."""
    return typecheck(parse_program(edf_source(client, msg_cap)))

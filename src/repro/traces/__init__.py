"""Marker-function traces, basic actions, and the scheduler protocol.

This package is the executable counterpart of the paper's trace layer
(sections 2.2 and 3.1):

* :mod:`repro.traces.markers` — the marker-function events of Fig. 4;
* :mod:`repro.traces.basic_actions` — the basic actions of Fig. 4;
* :mod:`repro.traces.protocol` — the state-transition system of Fig. 5,
  parametric in the socket list, deciding ``tr_prot`` (Def. 3.1) and
  recovering the basic-action sequence of an accepted trace;
* :mod:`repro.traces.pending` — the derived ``pending_jobs`` /
  ``read_jobs`` sets of Def. 3.2;
* :mod:`repro.traces.validity` — the functional-correctness predicate
  ``tr_valid`` (Def. 3.2).
"""

from repro.traces.basic_actions import (
    BasicAction,
    Compl,
    Disp,
    Exec,
    IdlingAction,
    Read,
    Selection,
)
from repro.traces.markers import (
    Marker,
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
    SocketId,
    Trace,
)
from repro.traces.pending import dispatched_jobs, pending_jobs, read_jobs
from repro.traces.protocol import ProtocolError, SchedulerProtocol, tr_prot
from repro.traces.validity import TraceValidityError, check_tr_valid, tr_valid

__all__ = [
    "BasicAction",
    "Compl",
    "Disp",
    "Exec",
    "IdlingAction",
    "Marker",
    "MCompletion",
    "MDispatch",
    "MExecution",
    "MIdling",
    "MReadE",
    "MReadS",
    "MSelection",
    "ProtocolError",
    "Read",
    "SchedulerProtocol",
    "Selection",
    "SocketId",
    "Trace",
    "TraceValidityError",
    "check_tr_valid",
    "dispatched_jobs",
    "pending_jobs",
    "read_jobs",
    "tr_prot",
    "tr_valid",
]

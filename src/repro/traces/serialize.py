"""JSON (de)serialization of traces, timed traces, and arrivals.

Runs are valuable artifacts: a stored timed trace can be re-checked by
every validator, re-converted to a schedule, and compared against future
versions of the scheduler (golden regression tests, `tests/golden/`).
The format is deliberately plain JSON — stable, diffable, and
independent of Python pickling.
"""

from __future__ import annotations

import json
from typing import Any

from repro.model.job import Job
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import TimedTrace
from repro.traces.markers import (
    Marker,
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
    Trace,
)


class SerializeError(Exception):
    """Malformed serialized trace data."""


def _job_to_json(job: Job | None) -> Any:
    if job is None:
        return None
    return {"data": list(job.data), "jid": job.jid}


def _job_from_json(obj: Any) -> Job | None:
    if obj is None:
        return None
    try:
        return Job(tuple(obj["data"]), obj["jid"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializeError(f"bad job object {obj!r}: {exc}") from exc


def marker_to_json(marker: Marker) -> dict[str, Any]:
    if isinstance(marker, MReadS):
        return {"kind": "read_start"}
    if isinstance(marker, MReadE):
        return {"kind": "read_end", "sock": marker.sock,
                "job": _job_to_json(marker.job)}
    if isinstance(marker, MSelection):
        return {"kind": "selection"}
    if isinstance(marker, MDispatch):
        return {"kind": "dispatch", "job": _job_to_json(marker.job)}
    if isinstance(marker, MExecution):
        return {"kind": "execution", "job": _job_to_json(marker.job)}
    if isinstance(marker, MCompletion):
        return {"kind": "completion", "job": _job_to_json(marker.job)}
    if isinstance(marker, MIdling):
        return {"kind": "idling"}
    raise SerializeError(f"unknown marker {marker!r}")  # pragma: no cover


def marker_from_json(obj: dict[str, Any]) -> Marker:
    kind = obj.get("kind")
    if kind == "read_start":
        return MReadS()
    if kind == "read_end":
        return MReadE(obj["sock"], _job_from_json(obj.get("job")))
    if kind == "selection":
        return MSelection()
    if kind == "idling":
        return MIdling()
    if kind in ("dispatch", "execution", "completion"):
        job = _job_from_json(obj.get("job"))
        if job is None:
            raise SerializeError(f"{kind} marker requires a job")
        return {"dispatch": MDispatch, "execution": MExecution,
                "completion": MCompletion}[kind](job)
    raise SerializeError(f"unknown marker kind {kind!r}")


def trace_to_json(trace: Trace) -> list[dict[str, Any]]:
    return [marker_to_json(m) for m in trace]


def trace_from_json(objs: list[dict[str, Any]]) -> list[Marker]:
    return [marker_from_json(o) for o in objs]


def timed_trace_to_json(timed: TimedTrace) -> dict[str, Any]:
    return {
        "markers": trace_to_json(timed.trace),
        "timestamps": list(timed.ts),
        "horizon": timed.horizon,
    }


def timed_trace_from_json(obj: dict[str, Any]) -> TimedTrace:
    try:
        return TimedTrace.make(
            trace_from_json(obj["markers"]),
            obj["timestamps"],
            obj["horizon"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializeError(f"bad timed trace: {exc}") from exc


def arrivals_to_json(arrivals: ArrivalSequence) -> list[dict[str, Any]]:
    return [
        {"time": a.time, "sock": a.sock, "data": list(a.data)}
        for a in arrivals
    ]


def arrivals_from_json(objs: list[dict[str, Any]]) -> ArrivalSequence:
    try:
        return ArrivalSequence(
            Arrival(o["time"], o["sock"], tuple(o["data"])) for o in objs
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializeError(f"bad arrivals: {exc}") from exc


def run_to_json(timed: TimedTrace, arrivals: ArrivalSequence) -> str:
    """Serialize a full observed run (pretty-printed, diff-friendly)."""
    return json.dumps(
        {
            "timed_trace": timed_trace_to_json(timed),
            "arrivals": arrivals_to_json(arrivals),
        },
        indent=1,
    )


def run_from_json(text: str) -> tuple[TimedTrace, ArrivalSequence]:
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializeError(f"invalid JSON: {exc}") from exc
    return (
        timed_trace_from_json(obj["timed_trace"]),
        arrivals_from_json(obj["arrivals"]),
    )

"""The semantics' trace state ``σ_trace`` (paper Fig. 6).

``idx`` is the next fresh job id; ``id_map`` maps raw payloads to the
queue of jobs read with that payload and not yet dispatched.  The
``READ-STEP-SUCCESS`` rule appends a fresh job; the dispatch marker pops
the head (footnote 5: any read-but-undispatched id would do — the head
is the canonical choice).  Shared by the instrumented MiniC semantics
and the pure-Python Rössl reference model, which keeps their job-id
assignment identical by construction.
"""

from __future__ import annotations

from repro.model.job import Job
from repro.model.message import MsgData


class TraceState:
    """``σ_trace = {idx : job_id; id_map : msg_data →fin list Job}``."""

    def __init__(self) -> None:
        self.idx: int = 0
        self._id_map: dict[MsgData, list[Job]] = {}

    def record_read(self, data: MsgData) -> Job:
        """Assign a fresh id to a successfully read payload."""
        job = Job(data, self.idx)
        self.idx += 1
        self._id_map.setdefault(data, []).append(job)
        return job

    def resolve_dispatch(self, data: MsgData) -> Job:
        """Recover the job a dispatch of ``data`` refers to (pops it)."""
        queue = self._id_map.get(data)
        if not queue:
            raise RuntimeError(
                f"dispatch of payload {data} with no read-but-undispatched job"
            )
        return queue.pop(0)

    def outstanding(self) -> set[Job]:
        """Jobs read but not yet dispatched (``trace_state_inv``)."""
        return {job for queue in self._id_map.values() for job in queue}

"""Marker-function events (paper Fig. 4, right column).

Marker functions are ghost calls inserted into Rössl's C code; each call
appends one event to the execution trace.  The event datatypes here are
exactly the paper's::

    marker ≜ M_ReadS | M_ReadE sock j⊥ | M_Selection | M_Dispatch j
           | M_Execution j | M_Completion j | M_Idling

``M_ReadE`` is the "pseudo marker" recording the outcome of the ``read``
system call: it carries the socket and either the job that was read or
``None`` for a failed (would-block) read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.model.job import Job

#: Sockets are identified by small integers (indices into the client's
#: ``input_socks`` list, Def. 3.3).
SocketId = int


@dataclass(frozen=True, slots=True)
class MReadS:
    """Start of a ``read`` system call (beginning of a Read action)."""

    def __str__(self) -> str:
        return "M_ReadS"


@dataclass(frozen=True, slots=True)
class MReadE:
    """Outcome of a ``read``: job ``job`` from socket ``sock``, or a
    failed read when ``job is None``."""

    sock: SocketId
    job: Job | None

    def __str__(self) -> str:
        outcome = "⊥" if self.job is None else str(self.job)
        return f"M_ReadE(sock={self.sock}, {outcome})"


@dataclass(frozen=True, slots=True)
class MSelection:
    """Start of the selection phase (``selection_start()``)."""

    def __str__(self) -> str:
        return "M_Selection"


@dataclass(frozen=True, slots=True)
class MDispatch:
    """Start of dispatching job ``job`` (``dispatch_start(j)``)."""

    job: Job

    def __str__(self) -> str:
        return f"M_Dispatch({self.job})"


@dataclass(frozen=True, slots=True)
class MExecution:
    """Start of the callback execution for job ``job``."""

    job: Job

    def __str__(self) -> str:
        return f"M_Execution({self.job})"


@dataclass(frozen=True, slots=True)
class MCompletion:
    """The callback for ``job`` returned; completion overhead begins.

    The timestamp of this marker is the job's *completion time* in the
    sense of Thm. 5.1.
    """

    job: Job

    def __str__(self) -> str:
        return f"M_Completion({self.job})"


@dataclass(frozen=True, slots=True)
class MIdling:
    """The scheduler found nothing to run (``idling_start()``)."""

    def __str__(self) -> str:
        return "M_Idling"


Marker = Union[MReadS, MReadE, MSelection, MDispatch, MExecution, MCompletion, MIdling]

#: A trace is a finite sequence of marker events.
Trace = Sequence[Marker]


def format_trace(trace: Trace) -> str:
    """Render a trace for debugging/reports, one marker per line."""
    return "\n".join(f"[{i:4d}] {m}" for i, m in enumerate(trace))

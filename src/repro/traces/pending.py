"""Derived job sets over traces (Def. 3.2).

``read_jobs(tr, i)`` — jobs read strictly before index ``i``;
``dispatched_jobs(tr, i)`` — jobs dispatched strictly before ``i``;
``pending_jobs(tr, i)`` — read but not yet dispatched::

    pending_jobs(i) ≜ { j | ∃ k_r < i. tr[k_r] = M_ReadE _ j
                          ∧ ∀ k < i. tr[k] ≠ M_Dispatch j }

These are the sets the functional-correctness predicate quantifies over.
The incremental :class:`PendingTracker` provides O(1)-per-event updates
for monitors and simulators; the plain functions are the specification.
"""

from __future__ import annotations

from repro.model.job import Job
from repro.traces.markers import Marker, MDispatch, MReadE, Trace


def read_jobs(trace: Trace, index: int | None = None) -> set[Job]:
    """Jobs successfully read strictly before ``index`` (default: end)."""
    stop = len(trace) if index is None else index
    return {
        m.job
        for m in trace[:stop]
        if isinstance(m, MReadE) and m.job is not None
    }


def dispatched_jobs(trace: Trace, index: int | None = None) -> set[Job]:
    """Jobs dispatched strictly before ``index`` (default: end)."""
    stop = len(trace) if index is None else index
    return {m.job for m in trace[:stop] if isinstance(m, MDispatch)}


def pending_jobs(trace: Trace, index: int | None = None) -> set[Job]:
    """Jobs read but not dispatched strictly before ``index``."""
    return read_jobs(trace, index) - dispatched_jobs(trace, index)


class PendingTracker:
    """Incrementally maintained ``pending_jobs`` set.

    Feed markers in trace order via :meth:`observe`; :attr:`pending`
    always equals ``pending_jobs(tr, i)`` for the next index ``i``.
    """

    def __init__(self) -> None:
        self._pending: set[Job] = set()
        self._read: set[Job] = set()

    @property
    def pending(self) -> frozenset[Job]:
        return frozenset(self._pending)

    @property
    def read(self) -> frozenset[Job]:
        return frozenset(self._read)

    def observe(self, marker: Marker) -> None:
        """Advance the tracker past one marker event."""
        if isinstance(marker, MReadE) and marker.job is not None:
            self._pending.add(marker.job)
            self._read.add(marker.job)
        elif isinstance(marker, MDispatch):
            # A dispatch of an unread job is a protocol violation; the
            # tracker stays permissive here (validity checking is the
            # job of tr_valid) and simply discards if present.
            self._pending.discard(marker.job)

"""Basic actions (paper Fig. 4, left column).

A *basic action* is one logical, loop-free chunk of scheduler work::

    basic_actions ≜ Read sock j⊥ | Selection j⊥ | Disp j | Exec j
                  | Compl j | Idling

A trace of marker functions accepted by the scheduler protocol (Fig. 5)
decodes into a sequence of basic actions; the decoding is performed by
:meth:`repro.traces.protocol.SchedulerProtocol.run`.  Each basic action
spans one or two marker intervals:

* ``Read`` spans the ``M_ReadS`` interval plus the following ``M_ReadE``
  interval (the paper coalesces the two markers into one action);
* every other action spans exactly the interval of its opening marker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.model.job import Job
from repro.traces.markers import SocketId


@dataclass(frozen=True, slots=True)
class Read:
    """A ``read`` on ``sock``: successful (``job``) or failed (``None``)."""

    sock: SocketId
    job: Job | None

    @property
    def failed(self) -> bool:
        return self.job is None

    def __str__(self) -> str:
        outcome = "⊥" if self.job is None else str(self.job)
        return f"Read(sock={self.sock}, {outcome})"


@dataclass(frozen=True, slots=True)
class Selection:
    """Selecting the next job: ``job`` was picked, or ``None`` if the
    pending queue was empty."""

    job: Job | None

    @property
    def failed(self) -> bool:
        return self.job is None

    def __str__(self) -> str:
        outcome = "⊥" if self.job is None else str(self.job)
        return f"Selection({outcome})"


@dataclass(frozen=True, slots=True)
class Disp:
    """Dispatch overhead: preparing to run ``job``'s callback."""

    job: Job

    def __str__(self) -> str:
        return f"Disp({self.job})"


@dataclass(frozen=True, slots=True)
class Exec:
    """The callback for ``job`` executing (the only non-overhead work)."""

    job: Job

    def __str__(self) -> str:
        return f"Exec({self.job})"


@dataclass(frozen=True, slots=True)
class Compl:
    """Completion overhead: cleanup after ``job``'s callback returned."""

    job: Job

    def __str__(self) -> str:
        return f"Compl({self.job})"


@dataclass(frozen=True, slots=True)
class IdlingAction:
    """The scheduler idling: no pending jobs after a failed selection."""

    def __str__(self) -> str:
        return "Idling"


BasicAction = Union[Read, Selection, Disp, Exec, Compl, IdlingAction]

"""The scheduler protocol: the state-transition system of Fig. 5.

The protocol describes every marker sequence the Rössl scheduling loop
(Fig. 2) may emit.  It is parametric in the client's socket list (the
paper's Fig. 5 shows the two-socket instance); sockets are polled in a
fixed round-robin order, full pass after full pass, until one pass in
which every read fails:

* polling: ``M_ReadS`` / ``M_ReadE sock j⊥`` pairs, one per socket per
  pass; a pass with at least one success is followed by another pass;
* a pass with only failures exits to ``M_Selection``;
* then either ``M_Dispatch j`` → ``M_Execution j`` → ``M_Completion j``
  (a job runs) or ``M_Idling`` (nothing pending); either way the loop
  returns to polling.

``tr_prot`` (Def. 3.1) holds iff the trace is accepted starting from the
Idling state.  Accepted traces *decode* into basic-action sequences
(Fig. 4); the decoder here also records which marker intervals each
action spans, which the timing layer uses to attribute time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.model.job import Job
from repro.traces.basic_actions import (
    BasicAction,
    Compl,
    Disp,
    Exec,
    IdlingAction,
    Read,
    Selection,
)
from repro.traces.markers import (
    Marker,
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
    SocketId,
    Trace,
)


class ProtocolError(Exception):
    """A trace violates the scheduler protocol.

    Attributes:
        index: position of the offending marker (``len(trace)`` when the
            trace is rejected for ending in a non-restartable state).
        state: the protocol state at the violation.
    """

    def __init__(self, index: int, state: "ProtocolState", message: str) -> None:
        super().__init__(f"at marker {index}, in state {state}: {message}")
        self.index = index
        self.state = state


# --------------------------------------------------------------------------
# Protocol states
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class StIdle:
    """Initial state / after ``M_Idling``: the next marker starts polling."""

    def __str__(self) -> str:
        return "Idle"


@dataclass(frozen=True, slots=True)
class StPollExpectReadS:
    """Within a polling pass, expecting ``M_ReadS`` for socket index
    ``sock_idx``; ``success_in_pass`` tracks whether any read of the
    current pass succeeded."""

    sock_idx: int
    success_in_pass: bool

    def __str__(self) -> str:
        return f"Poll[expect ReadS #{self.sock_idx}, success={self.success_in_pass}]"


@dataclass(frozen=True, slots=True)
class StPollExpectReadE:
    """Expecting the ``M_ReadE`` outcome for socket index ``sock_idx``."""

    sock_idx: int
    success_in_pass: bool
    read_start_index: int

    def __str__(self) -> str:
        return f"Poll[expect ReadE #{self.sock_idx}, success={self.success_in_pass}]"


@dataclass(frozen=True, slots=True)
class StExpectSelection:
    """The polling phase ended with an all-fail pass; expecting
    ``M_Selection``."""

    def __str__(self) -> str:
        return "ExpectSelection"


@dataclass(frozen=True, slots=True)
class StSelected:
    """After ``M_Selection``: expecting ``M_Dispatch j`` or ``M_Idling``;
    ``selection_index`` is the marker index of the ``M_Selection``."""

    selection_index: int

    def __str__(self) -> str:
        return "Selected"


@dataclass(frozen=True, slots=True)
class StDispatched:
    """After ``M_Dispatch job``: expecting ``M_Execution job``."""

    job: Job

    def __str__(self) -> str:
        return f"Dispatched({self.job})"


@dataclass(frozen=True, slots=True)
class StExecuting:
    """After ``M_Execution job``: expecting ``M_Completion job``."""

    job: Job

    def __str__(self) -> str:
        return f"Executing({self.job})"


@dataclass(frozen=True, slots=True)
class StCompleted:
    """After ``M_Completion job``: the next marker starts polling."""

    job: Job

    def __str__(self) -> str:
        return f"Completed({self.job})"


ProtocolState = Union[
    StIdle,
    StPollExpectReadS,
    StPollExpectReadE,
    StExpectSelection,
    StSelected,
    StDispatched,
    StExecuting,
    StCompleted,
]


@dataclass(frozen=True, slots=True)
class ActionSpan:
    """A decoded basic action together with the marker intervals it covers.

    The action occupies the half-open marker-index range
    ``[start, end)``; with timestamps ``ts`` it occupies the time range
    ``[ts[start], ts[end])`` (``ts[len(tr)]`` is the trace horizon).
    ``Read`` actions span two marker intervals (``M_ReadS`` + ``M_ReadE``),
    every other action spans one.
    """

    action: BasicAction
    start: int
    end: int

    def __str__(self) -> str:
        return f"{self.action} @ markers [{self.start},{self.end})"


class SchedulerProtocol:
    """The Fig. 5 STS for a given socket list.

    Sockets are polled in the order given by ``sockets``.  Use
    :meth:`accepts` / :meth:`check` for ``tr_prot``, :meth:`run` to also
    decode the basic-action sequence, and :meth:`step` to drive the
    automaton incrementally (used by the online monitor).
    """

    def __init__(self, sockets: Iterable[SocketId]) -> None:
        self.sockets: tuple[SocketId, ...] = tuple(sockets)
        if not self.sockets:
            raise ValueError("the protocol needs at least one socket")
        if len(set(self.sockets)) != len(self.sockets):
            raise ValueError(f"duplicate sockets in {self.sockets}")

    @property
    def num_sockets(self) -> int:
        return len(self.sockets)

    def initial_state(self) -> ProtocolState:
        """The start state: Idling (Def. 3.1)."""
        return StIdle()

    def step(
        self, state: ProtocolState, marker: Marker, index: int
    ) -> tuple[ProtocolState, list[ActionSpan]]:
        """One protocol transition.

        Returns the successor state and the basic actions *completed* by
        this marker (a marker may retroactively resolve a pending
        ``Selection``, hence the list).  Raises :class:`ProtocolError`
        if ``marker`` is not enabled in ``state``.
        """
        n = self.num_sockets
        if isinstance(state, (StIdle, StCompleted)):
            if isinstance(marker, MReadS):
                return StPollExpectReadE(0, False, index), []
            raise ProtocolError(index, state, f"expected M_ReadS, got {marker}")

        if isinstance(state, StPollExpectReadS):
            if isinstance(marker, MReadS):
                return (
                    StPollExpectReadE(state.sock_idx, state.success_in_pass, index),
                    [],
                )
            raise ProtocolError(index, state, f"expected M_ReadS, got {marker}")

        if isinstance(state, StPollExpectReadE):
            if not isinstance(marker, MReadE):
                raise ProtocolError(index, state, f"expected M_ReadE, got {marker}")
            expected_sock = self.sockets[state.sock_idx]
            if marker.sock != expected_sock:
                raise ProtocolError(
                    index,
                    state,
                    f"read outcome for socket {marker.sock}, expected {expected_sock}",
                )
            read = ActionSpan(
                Read(marker.sock, marker.job), state.read_start_index, index + 1
            )
            success = state.success_in_pass or marker.job is not None
            if state.sock_idx + 1 < n:
                return StPollExpectReadS(state.sock_idx + 1, success), [read]
            if success:
                return StPollExpectReadS(0, False), [read]
            return StExpectSelection(), [read]

        if isinstance(state, StExpectSelection):
            if isinstance(marker, MSelection):
                return StSelected(index), []
            raise ProtocolError(index, state, f"expected M_Selection, got {marker}")

        if isinstance(state, StSelected):
            if isinstance(marker, MDispatch):
                selection = ActionSpan(
                    Selection(marker.job), state.selection_index, state.selection_index + 1
                )
                dispatch = ActionSpan(Disp(marker.job), index, index + 1)
                return StDispatched(marker.job), [selection, dispatch]
            if isinstance(marker, MIdling):
                selection = ActionSpan(
                    Selection(None), state.selection_index, state.selection_index + 1
                )
                idling = ActionSpan(IdlingAction(), index, index + 1)
                return StIdle(), [selection, idling]
            raise ProtocolError(
                index, state, f"expected M_Dispatch or M_Idling, got {marker}"
            )

        if isinstance(state, StDispatched):
            if isinstance(marker, MExecution) and marker.job == state.job:
                return StExecuting(state.job), [ActionSpan(Exec(state.job), index, index + 1)]
            raise ProtocolError(
                index, state, f"expected M_Execution({state.job}), got {marker}"
            )

        if isinstance(state, StExecuting):
            if isinstance(marker, MCompletion) and marker.job == state.job:
                return StCompleted(state.job), [
                    ActionSpan(Compl(state.job), index, index + 1)
                ]
            raise ProtocolError(
                index, state, f"expected M_Completion({state.job}), got {marker}"
            )

        raise AssertionError(f"unhandled protocol state {state!r}")  # pragma: no cover

    def enabled_markers(self, state: ProtocolState) -> str:
        """Human-readable description of the markers enabled in ``state``."""
        if isinstance(state, (StIdle, StCompleted, StPollExpectReadS)):
            return "M_ReadS"
        if isinstance(state, StPollExpectReadE):
            return f"M_ReadE(sock={self.sockets[state.sock_idx]}, _)"
        if isinstance(state, StExpectSelection):
            return "M_Selection"
        if isinstance(state, StSelected):
            return "M_Dispatch(_) | M_Idling"
        if isinstance(state, StDispatched):
            return f"M_Execution({state.job})"
        if isinstance(state, StExecuting):
            return f"M_Completion({state.job})"
        raise AssertionError(f"unhandled protocol state {state!r}")  # pragma: no cover

    def check(self, trace: Trace) -> ProtocolState:
        """Check ``tr_prot``: raises :class:`ProtocolError` on violation,
        returns the final protocol state on success.

        Any prefix of an accepting run is accepted (the scheduler loops
        forever, so finite traces are always prefixes).
        """
        state = self.initial_state()
        for index, marker in enumerate(trace):
            state, _ = self.step(state, marker, index)
        return state

    def accepts(self, trace: Trace) -> bool:
        """Boolean form of :meth:`check` (the paper's ``tr_prot tr``)."""
        try:
            self.check(trace)
        except ProtocolError:
            return False
        return True

    def run(self, trace: Trace) -> list[ActionSpan]:
        """Decode an accepted trace into its basic-action sequence.

        Raises :class:`ProtocolError` if the trace is rejected.  Actions
        whose extent is not yet determined by the (finite) trace — e.g. a
        trailing ``M_Selection`` with no resolving marker — are omitted;
        they correspond to scheduler work still in flight at the horizon.
        """
        state = self.initial_state()
        actions: list[ActionSpan] = []
        for index, marker in enumerate(trace):
            state, completed = self.step(state, marker, index)
            actions.extend(completed)
        return actions


def tr_prot(trace: Trace, sockets: Iterable[SocketId]) -> bool:
    """Def. 3.1: the trace satisfies the scheduler protocol."""
    return SchedulerProtocol(sockets).accepts(trace)

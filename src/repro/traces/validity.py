"""Functional correctness of traces: ``tr_valid`` (Def. 3.2).

A trace is functionally correct iff

1. *selected jobs have the highest priority*: every dispatched job has
   priority ≥ every other pending job at the dispatch point;
2. *idling only if no jobs are pending*: ``M_Idling`` only occurs with
   an empty pending set;
3. *jobs have unique identifiers*: no job is read twice.

In the paper these are proven in RefinedC for all traces; here they are
decidable predicates checked on concrete traces (and, via the bounded
model checker in :mod:`repro.verification.model_check`, on *all* traces
up to a depth bound).
"""

from __future__ import annotations

from typing import Callable

from repro.model.message import MsgData
from repro.model.task import TaskSystem
from repro.traces.markers import (
    Marker,
    MDispatch,
    MIdling,
    MReadE,
    Trace,
)
from repro.traces.pending import PendingTracker

#: Priority assignment on message payloads (the composition of the
#: client's ``msg_to_task`` and ``task_prio``, Def. 3.3).
PriorityFn = Callable[[MsgData], int]


class TraceValidityError(Exception):
    """A trace violates functional correctness (Def. 3.2)."""

    def __init__(self, index: int, clause: str, message: str) -> None:
        super().__init__(f"at marker {index} [{clause}]: {message}")
        self.index = index
        self.clause = clause


class ValidityMonitor:
    """Incremental ``tr_valid`` checker.

    Feed markers in trace order via :meth:`observe`; raises
    :class:`TraceValidityError` at the first violating marker.  The
    monitor is the runtime analog of the separation-logic invariants
    carried through the RefinedC proof (section 3.3's state
    interpretation): it holds at every step of the execution.
    """

    def __init__(self, priority: PriorityFn) -> None:
        self._priority = priority
        self._tracker = PendingTracker()
        self._seen_ids: set[int] = set()
        self._index = 0

    def observe(self, marker: Marker) -> None:
        index = self._index
        if isinstance(marker, MReadE) and marker.job is not None:
            if marker.job.jid in self._seen_ids:
                raise TraceValidityError(
                    index,
                    "unique-ids",
                    f"job id {marker.job.jid} read twice",
                )
            self._seen_ids.add(marker.job.jid)
        elif isinstance(marker, MDispatch):
            pending = self._tracker.pending
            if marker.job not in pending:
                raise TraceValidityError(
                    index,
                    "highest-priority",
                    f"dispatched job {marker.job} is not pending",
                )
            prio = self._priority(marker.job.data)
            for other in pending:
                if self._priority(other.data) > prio:
                    raise TraceValidityError(
                        index,
                        "highest-priority",
                        f"dispatched {marker.job} (priority {prio}) while "
                        f"{other} (priority {self._priority(other.data)}) is pending",
                    )
        elif isinstance(marker, MIdling):
            pending = self._tracker.pending
            if pending:
                raise TraceValidityError(
                    index,
                    "idle-implies-empty",
                    f"idling with pending jobs {sorted(map(str, pending))}",
                )
        self._tracker.observe(marker)
        self._index += 1


def check_tr_valid(trace: Trace, priority: PriorityFn | TaskSystem) -> None:
    """Check Def. 3.2; raises :class:`TraceValidityError` on violation.

    ``priority`` may be a raw priority function on payloads or a
    :class:`~repro.model.task.TaskSystem` (whose ``priority_of`` is used).
    """
    if isinstance(priority, TaskSystem):
        priority_fn: PriorityFn = priority.priority_of
    else:
        priority_fn = priority
    monitor = ValidityMonitor(priority_fn)
    for marker in trace:
        monitor.observe(marker)


def tr_valid(trace: Trace, priority: PriorityFn | TaskSystem) -> bool:
    """Boolean form of :func:`check_tr_valid` (the paper's ``tr_valid``)."""
    try:
        check_tr_valid(trace, priority)
    except TraceValidityError:
        return False
    return True

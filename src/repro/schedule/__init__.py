"""Schedules of processor states and the trace→schedule conversion.

This package implements the abstraction step of paper section 2.4: a
timed trace of marker functions is converted — by a finite look-ahead
parser — into a *schedule* mapping every instant to a
:class:`~repro.schedule.states.ProcessorState`, the representation
Prosa-style response-time analyses consume.  The paper's validity
constraints (a)–(e) on such schedules are decidable checkers in
:mod:`repro.schedule.validity`, and :mod:`repro.schedule.metrics`
measures supply/blackout for the SBF experiments.
"""

from repro.schedule.busy import BusyWindow, busy_windows, longest_busy_window
from repro.schedule.conversion import ConversionError, FiniteSchedule, Segment, convert
from repro.schedule.extend import extend_with_pending_completions, pending_at_horizon
from repro.schedule.infinite import TotalSchedule
from repro.schedule.render import render_timeline
from repro.schedule.metrics import (
    blackout_in,
    max_blackout_over_windows,
    min_supply_over_windows,
    state_durations,
    supply_in,
)
from repro.schedule.states import (
    CompletionOvh,
    DispatchOvh,
    Executes,
    Idle,
    PollingOvh,
    ProcessorState,
    ReadOvh,
    SelectionOvh,
    is_overhead,
    is_supply,
)
from repro.schedule.validity import ScheduleValidityError, check_schedule_validity

__all__ = [
    "BusyWindow",
    "CompletionOvh",
    "ConversionError",
    "DispatchOvh",
    "Executes",
    "FiniteSchedule",
    "Idle",
    "PollingOvh",
    "ProcessorState",
    "ReadOvh",
    "ScheduleValidityError",
    "Segment",
    "SelectionOvh",
    "TotalSchedule",
    "blackout_in",
    "busy_windows",
    "check_schedule_validity",
    "convert",
    "extend_with_pending_completions",
    "longest_busy_window",
    "pending_at_horizon",
    "render_timeline",
    "is_overhead",
    "is_supply",
    "max_blackout_over_windows",
    "min_supply_over_windows",
    "state_durations",
    "supply_in",
]

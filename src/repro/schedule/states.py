"""Processor states (paper section 2.4).

::

    ProcessorState ≜ Idle | Executes j | ReadOvh j | PollingOvh j
                   | SelectionOvh j | DispatchOvh j | CompletionOvh j

``Executes`` is the only state in which the job under analysis makes
progress; ``Idle`` is available-but-unused time; every ``…Ovh`` state is
*overhead* — scheduler work attributed to a job — and is modelled as
blackout (no supply) in the aRSA instantiation (section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.model.job import Job


@dataclass(frozen=True, slots=True)
class Idle:
    """Nothing to do: polling found nothing and no job is pending."""

    def __str__(self) -> str:
        return "Idle"


@dataclass(frozen=True, slots=True)
class Executes:
    """The callback of ``job`` is running (supply consumed by the job)."""

    job: Job

    def __str__(self) -> str:
        return f"Executes({self.job})"


@dataclass(frozen=True, slots=True)
class ReadOvh:
    """Reads (failed ones plus the successful one) that brought ``job``
    into the system."""

    job: Job

    def __str__(self) -> str:
        return f"ReadOvh({self.job})"


@dataclass(frozen=True, slots=True)
class PollingOvh:
    """The concluding failed reads of the polling phase before ``job``
    was selected."""

    job: Job

    def __str__(self) -> str:
        return f"PollingOvh({self.job})"


@dataclass(frozen=True, slots=True)
class SelectionOvh:
    """Selecting ``job`` from the pending queue."""

    job: Job

    def __str__(self) -> str:
        return f"SelectionOvh({self.job})"


@dataclass(frozen=True, slots=True)
class DispatchOvh:
    """Preparing ``job``'s callback invocation."""

    job: Job

    def __str__(self) -> str:
        return f"DispatchOvh({self.job})"


@dataclass(frozen=True, slots=True)
class CompletionOvh:
    """Cleanup after ``job``'s callback returned."""

    job: Job

    def __str__(self) -> str:
        return f"CompletionOvh({self.job})"


ProcessorState = Union[
    Idle, Executes, ReadOvh, PollingOvh, SelectionOvh, DispatchOvh, CompletionOvh
]

OVERHEAD_STATES = (ReadOvh, PollingOvh, SelectionOvh, DispatchOvh, CompletionOvh)


def is_overhead(state: ProcessorState) -> bool:
    """Whether ``state`` is blackout (supply-restricted) time."""
    return isinstance(state, OVERHEAD_STATES)


def is_supply(state: ProcessorState) -> bool:
    """Whether ``state`` provides supply (Idle or Executes)."""
    return not is_overhead(state)


def job_of(state: ProcessorState) -> Job | None:
    """The job a state is attributed to (``None`` for Idle)."""
    if isinstance(state, Idle):
        return None
    return state.job

"""Extending finite schedules to Prosa's total representation (§6).

Prosa reasons over total schedules ``ℕ → ProcessorState`` with every job
eventually completed, while a real observation is a finite prefix that
may cut jobs off mid-flight.  Like ProKOS and RefinedProsa (related-work
discussion), we extend the finite schedule by *manually scheduling the
completion of any pending jobs* after the horizon — highest priority
first, each for its remaining WCET budget — and idling forever after.
(The paper notes that, unlike ProKOS, no infinite extension with future
*arrivals* is needed: the final theorem only speaks about jobs whose
deadline falls inside the horizon.)

The extension preserves everything the RTA needs: it never changes the
prefix, every read job eventually completes, and the appended segments
respect the per-job WCET budget.
"""

from __future__ import annotations

from repro.model.job import Job
from repro.model.task import TaskSystem
from repro.schedule.conversion import FiniteSchedule, Segment
from repro.schedule.infinite import TotalSchedule
from repro.schedule.states import Executes
from repro.timing.timed_trace import TimedTrace
from repro.traces.markers import MCompletion, MReadE
from repro.traces.validity import PriorityFn


def pending_at_horizon(timed: TimedTrace) -> list[Job]:
    """Jobs read but not completed within the observation (in read order)."""
    completed = {m.job for m in timed.trace if isinstance(m, MCompletion)}
    return [
        m.job
        for m in timed.trace
        if isinstance(m, MReadE) and m.job is not None and m.job not in completed
    ]


def service_received(timed: TimedTrace, job: Job) -> int:
    """Execution time ``job`` received within the observation."""
    total = 0
    for index, marker in enumerate(timed.trace):
        if type(marker).__name__ == "MExecution" and marker.job == job:
            start, end = timed.interval(index)
            total += end - start
    return total


def extend_with_pending_completions(
    schedule: FiniteSchedule,
    timed: TimedTrace,
    tasks: TaskSystem,
    priority: PriorityFn | None = None,
) -> TotalSchedule:
    """The ProKOS-style extension: complete every pending job after the
    horizon (priority order, remaining WCET each), then idle forever."""
    priority_fn = priority or tasks.priority_of
    pending = sorted(
        pending_at_horizon(timed),
        key=lambda j: (-priority_fn(j.data), j.jid),
    )
    segments = list(schedule.segments)
    cursor = schedule.end
    for job in pending:
        budget = tasks.msg_to_task(job.data).wcet - service_received(timed, job)
        if budget <= 0:
            budget = 1  # a cut-off job still needs an instant to wrap up
        segments.append(Segment(Executes(job), cursor, cursor + budget))
        cursor += budget
    extended = FiniteSchedule(tuple(segments), schedule.start, cursor)
    return TotalSchedule(extended)

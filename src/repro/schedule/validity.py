"""Validity constraints on schedules (paper section 2.4, Def. 2.2).

The constraints the paper proves about every converted schedule:

(a) every discrete instance (maximal run) of each processor state except
    ``Idle`` is bounded by its WCET-derived bound — ``PollingOvh`` by
    ``PB`` (Def. 2.2), ``ReadOvh`` by ``RB``, ``SelectionOvh`` /
    ``DispatchOvh`` / ``CompletionOvh`` by the respective action WCETs,
    and ``Executes j`` by ``C_{task(j)}``;
(b) consistency with the arrival sequence (checked on the timed trace,
    :func:`repro.timing.timed_trace.check_consistency`);
(c) functional correctness (checked on the trace,
    :func:`repro.traces.validity.check_tr_valid`);
(d) a schedule-level version of the scheduler protocol: for every
    executed job the states run ``PollingOvh j → SelectionOvh j →
    DispatchOvh j → Executes j → CompletionOvh j``, the job was read
    (``ReadOvh j``) earlier, and each job executes at most once;
(e) unique job identifiers (also trace-level).

This module implements (a) and (d); (b), (c), (e) live on the trace
side, and :func:`check_schedule_validity` composes them when given the
originating timed trace.
"""

from __future__ import annotations

from typing import Iterable

from repro.model.job import Job
from repro.model.task import TaskSystem
from repro.schedule.conversion import FiniteSchedule, Segment
from repro.schedule.states import (
    CompletionOvh,
    DispatchOvh,
    Executes,
    Idle,
    PollingOvh,
    ReadOvh,
    SelectionOvh,
)
from repro.timing.wcet import WcetModel


class ScheduleValidityError(Exception):
    """A schedule violates one of the validity constraints."""

    def __init__(self, constraint: str, message: str) -> None:
        super().__init__(f"[{constraint}] {message}")
        self.constraint = constraint


def check_state_bounds(
    schedule: FiniteSchedule,
    tasks: TaskSystem,
    wcet: WcetModel,
    num_sockets: int,
) -> None:
    """Constraint (a): per-instance duration bounds (Def. 2.2 and kin)."""
    bounds = {
        ReadOvh: wcet.read_ovh_bound(num_sockets),
        PollingOvh: wcet.polling_bound(num_sockets),
        SelectionOvh: wcet.selection_bound,
        DispatchOvh: wcet.dispatch_bound,
        CompletionOvh: wcet.completion_bound,
    }
    for segment in schedule:
        state = segment.state
        if isinstance(state, Idle):
            continue
        if isinstance(state, Executes):
            bound = tasks.msg_to_task(state.job.data).wcet
        else:
            bound = bounds[type(state)]
        if segment.duration > bound:
            raise ScheduleValidityError(
                "state-wcet",
                f"{segment} exceeds its bound {bound}",
            )


def check_schedule_protocol(schedule: FiniteSchedule) -> None:
    """Constraint (d): the schedule-level scheduler protocol."""
    read: set[Job] = set()
    executed: set[Job] = set()
    segments = schedule.segments
    for position, segment in enumerate(segments):
        state = segment.state
        if isinstance(state, ReadOvh):
            if state.job in read:
                raise ScheduleValidityError(
                    "protocol", f"job {state.job} read twice ({segment})"
                )
            read.add(state.job)
            continue
        if isinstance(state, PollingOvh):
            tail_segments = segments[position + 1 : position + 5]
            tail = [type(s.state) for s in tail_segments]
            expected = [SelectionOvh, DispatchOvh, Executes, CompletionOvh]
            # The observation horizon may cut the cycle short: a proper
            # prefix is fine at the very end of the schedule.
            truncated = position + 1 + len(tail_segments) == len(segments)
            pattern_ok = (
                tail == expected
                or (truncated and tail == expected[: len(tail)])
            )
            jobs_match = all(
                getattr(s.state, "job", None) == state.job
                for s in tail_segments
            )
            if not pattern_ok or not jobs_match:
                raise ScheduleValidityError(
                    "protocol",
                    f"PollingOvh({state.job}) not followed by "
                    f"Selection/Dispatch/Executes/Completion of the same job "
                    f"(got {[str(s) for s in segments[position + 1 : position + 5]]})",
                )
            continue
        if isinstance(state, SelectionOvh):
            if position == 0 or not isinstance(segments[position - 1].state, PollingOvh):
                raise ScheduleValidityError(
                    "protocol", f"{segment} without a preceding PollingOvh"
                )
            continue
        if isinstance(state, Executes):
            if state.job not in read:
                raise ScheduleValidityError(
                    "protocol", f"{segment} of a job that was never read"
                )
            if state.job in executed:
                raise ScheduleValidityError(
                    "protocol", f"job {state.job} executed twice"
                )
            executed.add(state.job)
            continue


def check_schedule_validity(
    schedule: FiniteSchedule,
    tasks: TaskSystem,
    wcet: WcetModel,
    num_sockets: int,
) -> None:
    """Constraints (a) and (d) together; raises on violation.

    Constraints (b), (c), (e) are trace-level: check them with
    :func:`repro.timing.timed_trace.check_consistency` and
    :func:`repro.traces.validity.check_tr_valid` on the originating
    timed trace.
    """
    check_state_bounds(schedule, tasks, wcet, num_sockets)
    check_schedule_protocol(schedule)


def instances(schedule: FiniteSchedule, state_type: type) -> list[Segment]:
    """All maximal runs of the given state class (helper for tests)."""
    return [s for s in schedule if isinstance(s.state, state_type)]

"""Total (possibly infinite) schedules: ``ℕ → ProcessorState``.

Prosa reasons over total schedules while the scheduler only ever
produces a finite prefix.  Like ProKOS and RefinedProsa (related-work
discussion, section 6), we extend the finite schedule beyond its horizon
with ``Idle`` — the paper notes that, because the final theorem only
guarantees jobs whose response-time bound lies *within* the horizon, no
infinite extension with future arrivals is needed.
"""

from __future__ import annotations

from repro.schedule.conversion import FiniteSchedule
from repro.schedule.states import Idle, ProcessorState


class TotalSchedule:
    """A total schedule: the finite prefix, then ``Idle`` forever.

    Instants before ``finite.start`` (the scheduler had not emitted its
    first marker yet) are also ``Idle``.
    """

    def __init__(self, finite: FiniteSchedule) -> None:
        self.finite = finite

    def __call__(self, time: int) -> ProcessorState:
        return self.state_at(time)

    def state_at(self, time: int) -> ProcessorState:
        if time < 0:
            raise IndexError("time must be a natural number")
        if self.finite.start <= time < self.finite.end:
            return self.finite.state_at(time)
        return Idle()

    def service_in(self, job, start: int, end: int) -> int:
        """Instants in ``[start, end)`` during which ``job`` executes.

        Only the finite prefix can serve jobs; the idle extension never
        does.
        """
        total = 0
        for segment in self.finite:
            if type(segment.state).__name__ != "Executes":
                continue
            if segment.state.job != job:
                continue
            lo = max(start, segment.start)
            hi = min(end, segment.end)
            if lo < hi:
                total += hi - lo
        return total

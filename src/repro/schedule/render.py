"""ASCII rendering of schedules: regenerating the paper's Fig. 3 bars.

Renders a :class:`~repro.schedule.conversion.FiniteSchedule` as a
one-character-per-instant timeline (scaled on request), with a legend
mapping glyphs to processor states.  Used by experiment E1 and the
examples to print the figure-style timeline next to the segment list.
"""

from __future__ import annotations

from repro.schedule.conversion import FiniteSchedule
from repro.schedule.states import (
    CompletionOvh,
    DispatchOvh,
    Executes,
    Idle,
    PollingOvh,
    ProcessorState,
    ReadOvh,
    SelectionOvh,
)

_GLYPHS: list[tuple[type, str, str]] = [
    (Idle, ".", "Idle"),
    (Executes, "#", "Executes"),
    (ReadOvh, "r", "ReadOvh"),
    (PollingOvh, "p", "PollingOvh"),
    (SelectionOvh, "s", "SelectionOvh"),
    (DispatchOvh, "d", "DispatchOvh"),
    (CompletionOvh, "c", "CompletionOvh"),
]


def glyph_of(state: ProcessorState) -> str:
    for state_type, glyph, _ in _GLYPHS:
        if isinstance(state, state_type):
            return glyph
    raise AssertionError(f"unhandled state {state!r}")  # pragma: no cover


def legend() -> str:
    """One-line legend for the timeline glyphs."""
    return "  ".join(f"{glyph}={name}" for _, glyph, name in _GLYPHS)


def render_timeline(
    schedule: FiniteSchedule,
    width: int = 72,
    ruler: bool = True,
) -> str:
    """Render the schedule as glyph rows of at most ``width`` columns.

    Each column covers ``ceil(duration / width)`` instants; a column
    showing mixed states displays the glyph of its *first* instant, with
    overhead states taking precedence so short overheads stay visible.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    duration = schedule.duration
    if duration == 0:
        return "(empty schedule)"
    scale = max(1, -(-duration // width))  # ceil division
    columns: list[str] = []
    for start in range(schedule.start, schedule.end, scale):
        end = min(start + scale, schedule.end)
        chosen: str | None = None
        for t in range(start, end):
            glyph = glyph_of(schedule.state_at(t))
            if chosen is None:
                chosen = glyph
            elif glyph not in (".", "#") and chosen in (".", "#"):
                chosen = glyph  # overheads win over idle/exec backgrounds
        columns.append(chosen or ".")
    lines = []
    if ruler:
        label = f"[{schedule.start}..{schedule.end})  1 column = {scale} instant(s)"
        lines.append(label)
    lines.append("".join(columns))
    lines.append(legend())
    return "\n".join(lines)


def render_segments(schedule: FiniteSchedule) -> str:
    """The segment list, one per line (the Fig. 3 annotations)."""
    return "\n".join(f"  {segment}" for segment in schedule)

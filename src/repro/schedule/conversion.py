"""Converting a timed trace into a schedule of processor states.

This is the finite look-ahead parser of paper section 2.4.  The
difficulty is attributing *failed* reads to jobs:

* failed reads followed (within the polling phase) by a successful read
  of ``j`` become ``ReadOvh j`` together with that read;
* the concluding failed reads of a polling phase (the all-fail pass plus
  any trailing failures after the phase's last success) become
  ``PollingOvh j`` when job ``j`` is executed next;
* when the polling phase found nothing and nothing is pending, the
  failed reads, the failed selection, and the idling action all map to
  ``Idle``.

Everything else maps one-to-one: ``Selection j`` → ``SelectionOvh j``,
``Disp j`` → ``DispatchOvh j``, ``Exec j`` → ``Executes j``, ``Compl j``
→ ``CompletionOvh j``.

Because attribution looks into the future, work that is unresolved at
the observation horizon (buffered failed reads, a selection whose
outcome was cut off) is *not* part of the returned schedule: the
schedule ends at the last instant whose state is determined,
``FiniteSchedule.end``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.schedule.states import (
    CompletionOvh,
    DispatchOvh,
    Executes,
    Idle,
    PollingOvh,
    ProcessorState,
    ReadOvh,
    SelectionOvh,
)
from repro.traces.basic_actions import (
    Compl,
    Disp,
    Exec,
    IdlingAction,
    Read,
    Selection,
)
from repro.traces.markers import SocketId
from repro.traces.protocol import ActionSpan, SchedulerProtocol
from repro.timing.timed_trace import TimedTrace


class ConversionError(Exception):
    """The timed trace cannot be converted (protocol violation or
    malformed action sequence)."""


@dataclass(frozen=True, slots=True)
class Segment:
    """A maximal run of one processor state over ``[start, end)``."""

    state: ProcessorState
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start

    def __str__(self) -> str:
        return f"[{self.start},{self.end}) {self.state}"


@dataclass(frozen=True)
class FiniteSchedule:
    """A schedule over ``[start, end)`` as contiguous maximal segments."""

    segments: tuple[Segment, ...]
    start: int
    end: int

    def __post_init__(self) -> None:
        previous_end = self.start
        for segment in self.segments:
            if segment.start != previous_end:
                raise ValueError(
                    f"segments not contiguous at {segment}: expected start "
                    f"{previous_end}"
                )
            if segment.duration <= 0:
                raise ValueError(f"empty segment {segment}")
            previous_end = segment.end
        if previous_end != self.end:
            raise ValueError(
                f"segments end at {previous_end}, schedule claims {self.end}"
            )

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    @property
    def duration(self) -> int:
        return self.end - self.start

    def state_at(self, time: int) -> ProcessorState:
        """The processor state at instant ``time`` (``sched t``)."""
        if not self.start <= time < self.end:
            raise IndexError(f"instant {time} outside [{self.start},{self.end})")
        lo, hi = 0, len(self.segments) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            segment = self.segments[mid]
            if time < segment.start:
                hi = mid - 1
            elif time >= segment.end:
                lo = mid + 1
            else:
                return segment.state
        raise AssertionError("contiguous segments must cover the range")  # pragma: no cover


def _merge(segments: Iterable[Segment]) -> list[Segment]:
    """Coalesce adjacent segments with equal states (e.g. consecutive
    idle loop iterations form one Idle run)."""
    merged: list[Segment] = []
    for segment in segments:
        if merged and merged[-1].state == segment.state and merged[-1].end == segment.start:
            merged[-1] = Segment(segment.state, merged[-1].start, segment.end)
        else:
            merged.append(segment)
    return merged


def _action_times(timed: TimedTrace, span: ActionSpan) -> tuple[int, int]:
    start = timed.ts[span.start]
    end = timed.ts[span.end] if span.end < len(timed.ts) else timed.horizon
    return start, end


def convert(
    timed: TimedTrace, sockets: Iterable[SocketId]
) -> FiniteSchedule:
    """Convert a protocol-conforming timed trace into a schedule.

    Raises :class:`ConversionError` if the trace violates the scheduler
    protocol (via :class:`~repro.traces.protocol.ProtocolError` wrapped).
    """
    protocol = SchedulerProtocol(sockets)
    try:
        actions = protocol.run(timed.trace)
    except Exception as exc:  # ProtocolError
        raise ConversionError(f"trace rejected by the scheduler protocol: {exc}") from exc

    segments: list[Segment] = []
    #: buffered failed-read intervals awaiting attribution
    buffered: list[tuple[int, int]] = []
    #: a resolved Selection/Disp/Exec/Compl group under construction
    index = 0
    resolved_end = timed.start_time

    def flush_buffered(state: ProcessorState) -> None:
        nonlocal resolved_end
        for start, end in buffered:
            segments.append(Segment(state, start, end))
        buffered.clear()

    while index < len(actions):
        span = actions[index]
        action = span.action
        start, end = _action_times(timed, span)
        if isinstance(action, Read):
            if action.failed:
                buffered.append((start, end))
                index += 1
                continue
            # Failed reads before a success join its ReadOvh.
            job = action.job
            assert job is not None
            if buffered:
                ovh_start = buffered[0][0]
                buffered.clear()
            else:
                ovh_start = start
            segments.append(Segment(ReadOvh(job), ovh_start, end))
            resolved_end = end
            index += 1
            continue
        if isinstance(action, Selection):
            if action.job is not None:
                job = action.job
                # The concluding failed reads become PollingOvh j.
                flush_buffered(PollingOvh(job))
                segments.append(Segment(SelectionOvh(job), start, end))
                resolved_end = end
                index += 1
                continue
            # Failed selection: reads + selection + idling are Idle.
            if index + 1 >= len(actions) or not isinstance(
                actions[index + 1].action, IdlingAction
            ):
                raise ConversionError(
                    "failed selection not followed by idling"
                )  # pragma: no cover - protocol guarantees this
            idling_span = actions[index + 1]
            _, idle_end = _action_times(timed, idling_span)
            idle_start = buffered[0][0] if buffered else start
            buffered.clear()
            segments.append(Segment(Idle(), idle_start, idle_end))
            resolved_end = idle_end
            index += 2
            continue
        if isinstance(action, Disp):
            segments.append(Segment(DispatchOvh(action.job), start, end))
        elif isinstance(action, Exec):
            segments.append(Segment(Executes(action.job), start, end))
        elif isinstance(action, Compl):
            segments.append(Segment(CompletionOvh(action.job), start, end))
        else:  # pragma: no cover - IdlingAction is consumed with Selection
            raise ConversionError(f"unexpected action {action}")
        resolved_end = end
        index += 1

    merged = _merge(segments)
    start_time = timed.start_time
    if not merged:
        return FiniteSchedule((), start_time, start_time)
    return FiniteSchedule(tuple(merged), merged[0].start, merged[-1].end)

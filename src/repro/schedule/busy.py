"""Busy windows: maximal non-idle stretches of a schedule.

aRSA's supply bound function is only required to hold *within a busy
window* (paper §4.2, appendix remark); these helpers locate the busy
windows of concrete schedules so experiments can validate the SBF
exactly where the analysis uses it (and, more strictly, everywhere —
our conservative SBF holds globally, see E7).

A *busy window* here is a maximal interval in which the processor is
never ``Idle``.  Gaps shorter than one instant cannot exist (segments
are integral), so detection is a linear scan over segments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.conversion import FiniteSchedule
from repro.schedule.metrics import supply_in
from repro.schedule.states import Idle


@dataclass(frozen=True, slots=True)
class BusyWindow:
    """One maximal non-idle stretch ``[start, end)``."""

    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start

    def __str__(self) -> str:
        return f"busy [{self.start},{self.end})"


def busy_windows(schedule: FiniteSchedule) -> list[BusyWindow]:
    """All maximal non-idle stretches, in order."""
    windows: list[BusyWindow] = []
    current_start: int | None = None
    for segment in schedule:
        if isinstance(segment.state, Idle):
            if current_start is not None:
                windows.append(BusyWindow(current_start, segment.start))
                current_start = None
        else:
            if current_start is None:
                current_start = segment.start
    if current_start is not None:
        windows.append(BusyWindow(current_start, schedule.end))
    return windows


def longest_busy_window(schedule: FiniteSchedule) -> BusyWindow | None:
    """The longest busy window, or ``None`` for an all-idle schedule."""
    windows = busy_windows(schedule)
    if not windows:
        return None
    return max(windows, key=lambda w: w.length)


def min_supply_in_busy_prefixes(
    schedule: FiniteSchedule, delta: int
) -> int | None:
    """Minimum supply over the length-``delta`` *prefixes* of busy
    windows (the exact anchoring aRSA uses for the SBF).

    Returns ``None`` when no busy window is at least ``delta`` long.
    """
    if delta <= 0:
        return 0
    candidates = [
        supply_in(schedule, window.start, window.start + delta)
        for window in busy_windows(schedule)
        if window.length >= delta
    ]
    if not candidates:
        return None
    return min(candidates)

"""Measuring schedules: supply, blackout, and state-duration totals.

Terminology follows aRSA (paper section 4.2): *supply* is time in which
the processor can progress jobs (``Executes`` or ``Idle``); *blackout*
is the complement — every overhead state.  These metrics validate the
supply bound function empirically: for every window length ``Δ``, the
measured minimum supply over all windows must dominate ``SBF(Δ)``.
"""

from __future__ import annotations

from collections import defaultdict

from repro.schedule.conversion import FiniteSchedule
from repro.schedule.states import ProcessorState, is_overhead


def blackout_in(schedule: FiniteSchedule, start: int, end: int) -> int:
    """Total blackout time within ``[start, end)`` (clipped to the
    schedule's extent)."""
    total = 0
    for segment in schedule:
        if not is_overhead(segment.state):
            continue
        lo = max(start, segment.start)
        hi = min(end, segment.end)
        if lo < hi:
            total += hi - lo
    return total


def supply_in(schedule: FiniteSchedule, start: int, end: int) -> int:
    """Total supply within ``[start, end) ∩ [schedule.start, schedule.end)``."""
    lo = max(start, schedule.start)
    hi = min(end, schedule.end)
    if lo >= hi:
        return 0
    return (hi - lo) - blackout_in(schedule, lo, hi)


def _candidate_window_starts(schedule: FiniteSchedule, delta: int) -> list[int]:
    """Window starts at which a sliding-window extremum can occur.

    The blackout indicator is piecewise constant with breakpoints at
    segment boundaries; the window integral is piecewise linear in the
    start, so extrema occur where either window edge hits a boundary.
    """
    boundaries: set[int] = {schedule.start, schedule.end}
    for segment in schedule:
        boundaries.add(segment.start)
        boundaries.add(segment.end)
    candidates: set[int] = set()
    for b in boundaries:
        for start in (b, b - delta):
            if schedule.start <= start and start + delta <= schedule.end:
                candidates.add(start)
    return sorted(candidates)


def max_blackout_over_windows(schedule: FiniteSchedule, delta: int) -> int:
    """Maximum blackout over all windows ``[t, t+Δ)`` inside the schedule.

    Returns 0 when ``Δ`` is 0 or exceeds the schedule duration.
    """
    if delta <= 0 or delta > schedule.duration:
        return 0
    return max(
        blackout_in(schedule, start, start + delta)
        for start in _candidate_window_starts(schedule, delta)
    )


def min_supply_over_windows(schedule: FiniteSchedule, delta: int) -> int:
    """Minimum supply over all windows ``[t, t+Δ)`` inside the schedule."""
    if delta <= 0 or delta > schedule.duration:
        return 0
    return delta - max_blackout_over_windows(schedule, delta)


def state_durations(schedule: FiniteSchedule) -> dict[str, int]:
    """Total time per state *kind* (class name), e.g. for reports."""
    totals: dict[str, int] = defaultdict(int)
    for segment in schedule:
        totals[type(segment.state).__name__] += segment.duration
    return dict(totals)


def total_overhead(schedule: FiniteSchedule) -> int:
    """Total blackout time over the whole schedule."""
    return blackout_in(schedule, schedule.start, schedule.end)


def utilization_of(schedule: FiniteSchedule) -> float:
    """Fraction of the schedule spent executing jobs."""
    if schedule.duration == 0:
        return 0.0
    executing = sum(
        segment.duration
        for segment in schedule
        if type(segment.state).__name__ == "Executes"
    )
    return executing / schedule.duration

"""The observability on/off switch.

Kept in its own tiny module so both :mod:`repro.obs.spans` and
:mod:`repro.obs.metrics` (and every instrumented layer) can consult it
without import cycles.  The flag gates *recording* only: disabled code
paths do no allocation and no bookkeeping beyond one boolean check, and
metrics are observational either way — enabling observability never
changes an analysis, simulation, or verification result.
"""

from __future__ import annotations

_ENABLED = False


def enabled() -> bool:
    """Whether observability recording is on (process-wide)."""
    return _ENABLED


def set_enabled(on: bool) -> None:
    """Turn observability recording on or off (process-wide)."""
    global _ENABLED
    _ENABLED = bool(on)

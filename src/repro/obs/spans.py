"""Hierarchical timed spans over monotonic clocks.

A span measures one named stretch of work::

    from repro import obs

    with obs.span("rta.analyse", tasks=len(tasks)) as sp:
        ...
    sp.elapsed_seconds  # always available, even when recording is off

Spans *always* measure (two ``perf_counter_ns`` calls — callers use them
at run/campaign granularity, never per instruction), but only *record*
into the process-wide recorder when :func:`repro.obs.state.enabled` is
on.  Nesting is tracked per thread: a span entered inside another span
records that span's name as its parent, which is how the exporters
rebuild the span tree (and how the Chrome trace nests its slices).

Recorded spans are immutable :class:`SpanRecord` values — picklable on
purpose, so parallel workers can ship their span data back to the parent
inside a metrics snapshot (:mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as recorded.

    ``start_ns`` is a ``perf_counter_ns`` reading, meaningful only
    relative to other records from the same process (``pid``) — the
    exporters keep per-process tracks apart.
    """

    name: str
    start_ns: int
    duration_ns: int
    depth: int
    parent: str | None
    pid: int
    tid: int
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def seconds(self) -> float:
        return self.duration_ns / 1e9


class _Recorder:
    """Append-only, thread-safe store of finished spans."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def extend(self, records: tuple[SpanRecord, ...]) -> None:
        with self._lock:
            self._records.extend(records)

    def records(self) -> tuple[SpanRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()


_RECORDER = _Recorder()
_STACKS = threading.local()


def _stack() -> list[str]:
    stack = getattr(_STACKS, "spans", None)
    if stack is None:
        stack = _STACKS.spans = []
    return stack


def span_records() -> tuple[SpanRecord, ...]:
    """All spans recorded so far in this process, in completion order."""
    return _RECORDER.records()


def find_spans(name: str) -> tuple[SpanRecord, ...]:
    """The recorded spans named ``name``."""
    return tuple(r for r in _RECORDER.records() if r.name == name)


def clear_spans() -> None:
    """Drop every recorded span (used by reset / tests / fork inits)."""
    _RECORDER.clear()


def _adopt_records(records: tuple[SpanRecord, ...]) -> None:
    """Merge foreign (worker) span records into this process's recorder."""
    _RECORDER.extend(records)


@dataclass
class Span:
    """The context manager returned by :func:`span`."""

    name: str
    attrs: dict[str, object] = field(default_factory=dict)
    start_ns: int = 0
    duration_ns: int = 0
    _depth: int = 0
    _parent: str | None = None

    def set(self, **attrs: object) -> None:
        """Attach attributes mid-span (recorded with the span)."""
        self.attrs.update(attrs)

    @property
    def elapsed_seconds(self) -> float:
        """Duration in seconds (valid after the ``with`` block exits)."""
        return self.duration_ns / 1e9

    def __enter__(self) -> "Span":
        stack = _stack()
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self.name)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_ns = time.perf_counter_ns() - self.start_ns
        stack = _stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        from repro.obs.state import enabled

        if enabled():
            _RECORDER.add(
                SpanRecord(
                    name=self.name,
                    start_ns=self.start_ns,
                    duration_ns=self.duration_ns,
                    depth=self._depth,
                    parent=self._parent,
                    pid=os.getpid(),
                    tid=threading.get_ident(),
                    attrs=tuple(sorted(self.attrs.items())),
                )
            )


def span(name: str, **attrs: object) -> Span:
    """Open a timed span named ``name`` with optional attributes.

    Span names follow the same dotted convention as metric names
    (``layer.operation``, see docs/observability.md).
    """
    return Span(name, dict(attrs))

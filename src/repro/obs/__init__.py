"""repro.obs — zero-dependency observability: spans, metrics, exports.

The analyzer instruments the modeled program with marker traces; this
package extends the same idea to the analyzer *itself*:

* :mod:`repro.obs.spans` — hierarchical timed spans over monotonic
  clocks (``with obs.span("rta.analyse"): ...``);
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  in a process-wide registry with picklable **snapshot / merge / diff**,
  so parallel workers ship their numbers back to the parent;
* :mod:`repro.obs.export` — JSONL, Chrome trace-event format, and a
  human text summary.

Everything is off by default: instrumented hot paths pay one boolean
check and nothing else.  Enabling recording never changes any analysis,
simulation, or verification result — metrics are observational only,
and tests assert byte-identical outputs with recording on and off.

Typical use::

    from repro import obs

    obs.enable()
    with obs.span("campaign.adequacy", runs=200):
        ...
        obs.inc("sim.runs")
    obs.export.write_metrics_jsonl("metrics.jsonl")
    obs.export.write_chrome_trace("trace.json")
    print(obs.export.text_summary())
"""

from repro.obs import export
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    HistogramState,
    MetricsRegistry,
    MetricsSnapshot,
    REGISTRY,
    counter_value,
    gauge,
    inc,
    merge_snapshot,
    observe,
    reset,
    snapshot,
)
from repro.obs.spans import (
    Span,
    SpanRecord,
    clear_spans,
    find_spans,
    span,
    span_records,
)
from repro.obs.state import enabled, set_enabled


def enable() -> None:
    """Turn on observability recording (process-wide)."""
    set_enabled(True)


def disable() -> None:
    """Turn off observability recording (process-wide)."""
    set_enabled(False)


__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramState",
    "MetricsRegistry",
    "MetricsSnapshot",
    "REGISTRY",
    "Span",
    "SpanRecord",
    "clear_spans",
    "counter_value",
    "disable",
    "enable",
    "enabled",
    "export",
    "find_spans",
    "gauge",
    "inc",
    "merge_snapshot",
    "observe",
    "reset",
    "set_enabled",
    "snapshot",
    "span",
    "span_records",
]

"""Counters, gauges, and fixed-bucket histograms, process-wide.

The registry is a single process-global object; instrumented layers call
the module-level helpers (:func:`inc`, :func:`gauge`, :func:`observe`)
which are no-ops when observability is disabled — one boolean check, no
allocation, no locking.

Two value types make the registry distributable:

* :class:`MetricsSnapshot` — an immutable, picklable copy of everything
  recorded so far (counters, gauges, histograms, *and* the span records
  of :mod:`repro.obs.spans`).  Snapshots :meth:`~MetricsSnapshot.merge`
  associatively (counters and histogram buckets add, gauges are
  last-writer-wins, spans concatenate), and :meth:`~MetricsSnapshot.diff`
  subtracts an earlier snapshot of the *same* process — the pair is how
  parallel workers report exactly the work of one chunk.
* :func:`merge_snapshot` folds a snapshot (typically a worker's) back
  into this process's registry and span recorder, so a parallel campaign
  ends with the same counts a serial one would have produced.

Metric names are dotted lowercase, ``layer.noun[_unit]`` — e.g.
``vm.instructions``, ``rta.memo_curve.hits``, ``sim.markers``.  See
docs/observability.md for the full naming table.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.spans import SpanRecord, _adopt_records, clear_spans, span_records
from repro.obs.state import enabled

#: Default histogram bucket upper bounds (a 1-2.5-5 decade ladder).
#: Values above the last edge land in the implicit +inf bucket.
DEFAULT_BUCKETS: tuple[int, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
)


@dataclass(frozen=True)
class HistogramState:
    """A fixed-bucket histogram as an immutable value.

    ``counts`` has ``len(buckets) + 1`` cells: one per upper bound
    (``value <= bucket``) plus the overflow bucket.
    """

    buckets: tuple[int, ...]
    counts: tuple[int, ...]
    total: int
    sum: int

    def merge(self, other: "HistogramState") -> "HistogramState":
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with buckets {self.buckets} "
                f"and {other.buckets}"
            )
        return HistogramState(
            buckets=self.buckets,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            sum=self.sum + other.sum,
        )

    def diff(self, earlier: "HistogramState") -> "HistogramState":
        if self.buckets != earlier.buckets:
            raise ValueError("histogram buckets changed between snapshots")
        return HistogramState(
            buckets=self.buckets,
            counts=tuple(a - b for a, b in zip(self.counts, earlier.counts)),
            total=self.total - earlier.total,
            sum=self.sum - earlier.sum,
        )


def _bucket_index(buckets: tuple[int, ...], value: float) -> int:
    for i, bound in enumerate(buckets):
        if value <= bound:
            return i
    return len(buckets)


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, picklable view of a registry (plus span records)."""

    counters: tuple[tuple[str, int], ...] = ()
    gauges: tuple[tuple[str, float], ...] = ()
    histograms: tuple[tuple[str, HistogramState], ...] = ()
    spans: tuple[SpanRecord, ...] = ()

    def counter(self, name: str) -> int:
        """The value of counter ``name`` (0 when absent)."""
        return dict(self.counters).get(name, 0)

    def gauge_value(self, name: str) -> float | None:
        return dict(self.gauges).get(name)

    def histogram(self, name: str) -> HistogramState | None:
        return dict(self.histograms).get(name)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots; associative, identity = empty snapshot."""
        counters = dict(self.counters)
        for name, value in other.counters:
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)  # last-writer-wins
        histograms = dict(self.histograms)
        for name, state in other.histograms:
            mine = histograms.get(name)
            histograms[name] = state if mine is None else mine.merge(state)
        return MetricsSnapshot(
            counters=tuple(sorted(counters.items())),
            gauges=tuple(sorted(gauges.items())),
            histograms=tuple(sorted(histograms.items())),
            spans=self.spans + other.spans,
        )

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened after ``earlier`` was taken (same process).

        Counters and histograms subtract (zero entries are dropped);
        gauges keep their latest values; spans are the suffix recorded
        since ``earlier`` (the recorder is append-only).
        """
        before = dict(earlier.counters)
        counters = tuple(
            sorted(
                (name, value - before.get(name, 0))
                for name, value in self.counters
                if value - before.get(name, 0) != 0
            )
        )
        hist_before = dict(earlier.histograms)
        histograms = []
        for name, state in self.histograms:
            prior = hist_before.get(name)
            delta = state if prior is None else state.diff(prior)
            if delta.total:
                histograms.append((name, delta))
        return MetricsSnapshot(
            counters=counters,
            gauges=self.gauges,
            histograms=tuple(sorted(histograms)),
            spans=self.spans[len(earlier.spans):],
        )


class MetricsRegistry:
    """The mutable, thread-safe store behind the module helpers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._hist_buckets: dict[str, tuple[int, ...]] = {}
        self._hist_counts: dict[str, list[int]] = {}
        self._hist_total: dict[str, int] = {}
        self._hist_sum: dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(
        self, name: str, value: float, buckets: tuple[int, ...] = DEFAULT_BUCKETS
    ) -> None:
        with self._lock:
            known = self._hist_buckets.get(name)
            if known is None:
                known = self._hist_buckets[name] = tuple(buckets)
                self._hist_counts[name] = [0] * (len(known) + 1)
                self._hist_total[name] = 0
                self._hist_sum[name] = 0
            self._hist_counts[name][_bucket_index(known, value)] += 1
            self._hist_total[name] += 1
            self._hist_sum[name] += int(value)

    def counter_value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                counters=tuple(sorted(self._counters.items())),
                gauges=tuple(sorted(self._gauges.items())),
                histograms=tuple(
                    sorted(
                        (
                            name,
                            HistogramState(
                                buckets=self._hist_buckets[name],
                                counts=tuple(self._hist_counts[name]),
                                total=self._hist_total[name],
                                sum=self._hist_sum[name],
                            ),
                        )
                        for name in self._hist_buckets
                    )
                ),
                spans=span_records(),
            )

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        with self._lock:
            for name, value in snapshot.counters:
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.gauges:
                self._gauges[name] = value
            for name, state in snapshot.histograms:
                known = self._hist_buckets.get(name)
                if known is None:
                    self._hist_buckets[name] = state.buckets
                    self._hist_counts[name] = list(state.counts)
                    self._hist_total[name] = state.total
                    self._hist_sum[name] = state.sum
                    continue
                if known != state.buckets:
                    raise ValueError(
                        f"histogram {name!r}: bucket mismatch on merge"
                    )
                counts = self._hist_counts[name]
                for i, c in enumerate(state.counts):
                    counts[i] += c
                self._hist_total[name] += state.total
                self._hist_sum[name] += state.sum
        _adopt_records(snapshot.spans)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hist_buckets.clear()
            self._hist_counts.clear()
            self._hist_total.clear()
            self._hist_sum.clear()
        clear_spans()


REGISTRY = MetricsRegistry()


def inc(name: str, amount: int = 1) -> None:
    """Add ``amount`` to counter ``name`` (no-op when disabled)."""
    if enabled():
        REGISTRY.inc(name, amount)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when disabled)."""
    if enabled():
        REGISTRY.gauge(name, value)


def observe(
    name: str, value: float, buckets: tuple[int, ...] = DEFAULT_BUCKETS
) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    if enabled():
        REGISTRY.observe(name, value, buckets)


def counter_value(name: str) -> int:
    """Current value of counter ``name`` (0 when absent or disabled)."""
    return REGISTRY.counter_value(name)


def snapshot() -> MetricsSnapshot:
    """An immutable copy of everything recorded so far."""
    return REGISTRY.snapshot()


def merge_snapshot(snap: MetricsSnapshot) -> None:
    """Fold ``snap`` (e.g. a worker's chunk delta) into this registry."""
    REGISTRY.merge_snapshot(snap)


def reset() -> None:
    """Drop all recorded metrics and spans (process-wide)."""
    REGISTRY.reset()

"""Exporters: JSONL metrics, Chrome trace-event files, text summaries.

Three output shapes, all stdlib-only:

* :func:`metrics_jsonl` / :func:`write_metrics_jsonl` — one JSON object
  per line: ``{"type": "counter"|"gauge"|"histogram"|"span", ...}``.
  Greppable, streamable, diffable; the CI smoke test parses every line.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (complete ``"ph": "X"`` events), loadable in
  ``chrome://tracing`` / Perfetto.  Workers show up as separate ``pid``
  tracks, which is how the E18 per-worker breakdown is read.
* :func:`text_summary` — a human-oriented profile: spans aggregated by
  name (count / total / mean), then counters, gauges, and histograms.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.metrics import MetricsSnapshot, snapshot as _global_snapshot
from repro.obs.spans import SpanRecord


def _snap(snap: MetricsSnapshot | None) -> MetricsSnapshot:
    return _global_snapshot() if snap is None else snap


# -- JSONL -----------------------------------------------------------------


def metrics_jsonl(snap: MetricsSnapshot | None = None) -> list[str]:
    """The snapshot as JSONL lines (counters, gauges, histograms, spans)."""
    snap = _snap(snap)
    lines = []
    for name, value in snap.counters:
        lines.append(json.dumps(
            {"type": "counter", "name": name, "value": value},
            sort_keys=True,
        ))
    for name, value in snap.gauges:
        lines.append(json.dumps(
            {"type": "gauge", "name": name, "value": value},
            sort_keys=True,
        ))
    for name, state in snap.histograms:
        lines.append(json.dumps(
            {
                "type": "histogram",
                "name": name,
                "buckets": list(state.buckets),
                "counts": list(state.counts),
                "count": state.total,
                "sum": state.sum,
            },
            sort_keys=True,
        ))
    for record in snap.spans:
        lines.append(json.dumps(
            {
                "type": "span",
                "name": record.name,
                "start_ns": record.start_ns,
                "duration_ns": record.duration_ns,
                "parent": record.parent,
                "depth": record.depth,
                "pid": record.pid,
                "attrs": dict(record.attrs),
            },
            sort_keys=True,
        ))
    return lines


def write_metrics_jsonl(
    path: str | Path, snap: MetricsSnapshot | None = None
) -> int:
    """Write the JSONL export to ``path``; returns the number of lines."""
    lines = metrics_jsonl(snap)
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


# -- Chrome trace-event format ---------------------------------------------


def chrome_trace(snap: MetricsSnapshot | None = None) -> dict:
    """The span records as a ``chrome://tracing``-loadable object."""
    snap = _snap(snap)
    events = []
    for record in snap.spans:
        events.append(
            {
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ph": "X",
                "ts": record.start_ns / 1_000,   # microseconds
                "dur": record.duration_ns / 1_000,
                "pid": record.pid,
                "tid": record.tid,
                "args": dict(record.attrs),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path, snap: MetricsSnapshot | None = None
) -> int:
    """Write the Chrome trace to ``path``; returns the event count."""
    trace = chrome_trace(snap)
    Path(path).write_text(json.dumps(trace, sort_keys=True))
    return len(trace["traceEvents"])


# -- human text summary ----------------------------------------------------


def _aggregate_spans(
    spans: Iterable[SpanRecord],
) -> list[tuple[str, int, float, float]]:
    """Per span name: (name, count, total seconds, mean milliseconds)."""
    totals: dict[str, tuple[int, int]] = {}
    for record in spans:
        count, dur = totals.get(record.name, (0, 0))
        totals[record.name] = (count + 1, dur + record.duration_ns)
    return sorted(
        (
            (name, count, dur / 1e9, dur / count / 1e6)
            for name, (count, dur) in totals.items()
        ),
        key=lambda row: -row[2],
    )


def text_summary(snap: MetricsSnapshot | None = None) -> str:
    """A human-readable profile of the snapshot."""
    from repro.analysis.report import format_table

    snap = _snap(snap)
    sections = []
    if snap.spans:
        rows = [
            (name, count, f"{total:.4f}", f"{mean:.3f}")
            for name, count, total, mean in _aggregate_spans(snap.spans)
        ]
        sections.append(format_table(
            ["span", "count", "total s", "mean ms"], rows, title="spans"
        ))
    if snap.counters:
        sections.append(format_table(
            ["counter", "value"], list(snap.counters), title="counters"
        ))
    if snap.gauges:
        sections.append(format_table(
            ["gauge", "value"], list(snap.gauges), title="gauges"
        ))
    if snap.histograms:
        rows = []
        for name, state in snap.histograms:
            cells = [
                f"<={bound}:{count}"
                for bound, count in zip(state.buckets, state.counts)
                if count
            ]
            if state.counts[-1]:
                cells.append(f">{state.buckets[-1]}:{state.counts[-1]}")
            rows.append((name, state.total, state.sum, " ".join(cells) or "—"))
        sections.append(format_table(
            ["histogram", "count", "sum", "nonzero buckets"],
            rows, title="histograms",
        ))
    if not sections:
        return "(no observability data recorded — is repro.obs enabled?)"
    return "\n\n".join(sections)

"""The timed driver: stamping markers and delivering arrivals.

The scheduler implementations know nothing about time (exactly as the
RefinedC verification is "completely agnostic to the concrete timing
behavior", section 2.2).  Time lives here:

* the driver is the scheduler's :class:`MarkerSink`; when a marker is
  emitted it is stamped with the current clock and the clock advances by
  the duration of the work the marker starts (drawn from a
  :class:`DurationPolicy`, never exceeding the WCET);
* the driver is also the scheduler's read :class:`Environment`: before
  answering a read it delivers every arrival with time strictly before
  the current clock — the clock at a read is the ``M_ReadE`` timestamp,
  so Def. 2.1 consistency holds by construction;
* a read spans two marker intervals: the syscall part (after
  ``M_ReadS``) and the post-processing part (after ``M_ReadE``); their
  sum is bounded by ``WcetFR``/``WcetSR`` depending on the outcome.

The simulation ends at the ``horizon``: the first marker that would be
stamped at or past it raises :class:`HorizonReached` instead, so every
recorded timestamp is below the horizon.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol

from repro import obs
from repro.engine import SchedulerEngine, as_engine
from repro.model.message import MsgData
from repro.rossl.client import RosslClient
from repro.rossl.env import HorizonReached, QueueEnvironment
from repro.schedule.conversion import FiniteSchedule, convert
from repro.timing.arrivals import ArrivalSequence
from repro.timing.timed_trace import TimedTrace, job_arrival_times
from repro.timing.wcet import WcetModel
from repro.traces.markers import (
    Marker,
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
    SocketId,
)


class DurationPolicy(Protocol):
    """Draws the actual duration of one piece of work, in ``[1, bound]``."""

    def pick(self, kind: str, bound: int) -> int: ...  # pragma: no cover


class WcetDurations:
    """Adversarial timing: every action takes exactly its WCET."""

    def pick(self, kind: str, bound: int) -> int:
        return bound


@dataclass
class UniformDurations:
    """Durations uniform in ``[1, bound]`` (seeded)."""

    rng: random.Random

    def pick(self, kind: str, bound: int) -> int:
        return self.rng.randint(1, bound)


@dataclass
class FractionDurations:
    """Durations at a fixed fraction of the WCET (at least 1)."""

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")

    def pick(self, kind: str, bound: int) -> int:
        return max(1, min(bound, round(self.fraction * bound)))


class TimedDriver:
    """MarkerSink + Environment with a clock (see module docstring)."""

    def __init__(
        self,
        client: RosslClient,
        arrivals: ArrivalSequence,
        wcet: WcetModel,
        horizon: int,
        durations: DurationPolicy | None = None,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.client = client
        self.wcet = wcet
        self.horizon = horizon
        self.durations = durations or WcetDurations()
        self.clock = 0
        self.trace: list[Marker] = []
        self.timestamps: list[int] = []
        self._queues = QueueEnvironment(client.sockets)
        self._pending_arrivals = list(arrivals.restricted_to(client.sockets))
        self._delivered = 0
        self._read_syscall_duration: int | None = None
        #: Optional delivery gate ``(clock) -> bool``; while it returns
        #: ``False`` no arrivals are moved into the socket queues, so
        #: reads fail as if the messages had not come in yet.  This is
        #: the injection point for the ``jitter_spike`` fault
        #: (:mod:`repro.faults`): suppressed windows force idling between
        #: a job's arrival and its read.  ``None`` (the default) delivers
        #: normally.
        self.delivery_gate = None

    # -- Environment protocol ------------------------------------------------

    def _deliver_up_to_clock(self) -> None:
        """Move arrivals with time < clock into the socket queues."""
        if self.delivery_gate is not None and not self.delivery_gate(self.clock):
            return
        while (
            self._delivered < len(self._pending_arrivals)
            and self._pending_arrivals[self._delivered].time < self.clock
        ):
            arrival = self._pending_arrivals[self._delivered]
            self._queues.inject(arrival.sock, arrival.data)
            self._delivered += 1

    def read(self, sock: SocketId) -> MsgData | None:
        self._deliver_up_to_clock()
        return self._queues.read(sock)

    # -- MarkerSink protocol ---------------------------------------------------

    def emit(self, marker: Marker) -> None:
        if self.clock >= self.horizon:
            raise HorizonReached(f"horizon {self.horizon} reached at {self.clock}")
        self.trace.append(marker)
        self.timestamps.append(self.clock)
        self.clock += self._interval_duration(marker)

    def _interval_duration(self, marker: Marker) -> int:
        wcet = self.wcet
        if isinstance(marker, MReadS):
            # Syscall part: leave at least one unit for post-processing
            # under either outcome.
            bound = min(wcet.failed_read, wcet.success_read) - 1
            duration = self.durations.pick("read_syscall", bound)
            self._read_syscall_duration = duration
            return duration
        if isinstance(marker, MReadE):
            syscall = self._read_syscall_duration
            assert syscall is not None, "M_ReadE without a preceding M_ReadS"
            self._read_syscall_duration = None
            total_bound = (
                wcet.failed_read if marker.job is None else wcet.success_read
            )
            kind = "read_post_fail" if marker.job is None else "read_post_success"
            return self.durations.pick(kind, total_bound - syscall)
        if isinstance(marker, MSelection):
            return self.durations.pick("selection", wcet.selection)
        if isinstance(marker, MDispatch):
            return self.durations.pick("dispatch", wcet.dispatch)
        if isinstance(marker, MExecution):
            bound = self.client.tasks.msg_to_task(marker.job.data).wcet
            return self.durations.pick("execution", bound)
        if isinstance(marker, MCompletion):
            return self.durations.pick("completion", wcet.completion)
        if isinstance(marker, MIdling):
            return self.durations.pick("idling", wcet.idling)
        raise AssertionError(f"unhandled marker {marker}")  # pragma: no cover

    def timed_trace(self) -> TimedTrace:
        return TimedTrace.make(self.trace, self.timestamps, self.horizon)


@dataclass(frozen=True)
class SimulationResult:
    """Everything one simulated run produced."""

    client: RosslClient
    arrivals: ArrivalSequence
    wcet: WcetModel
    timed_trace: TimedTrace
    implementation: str = "python"
    _schedule_cache: list = field(default_factory=list, compare=False)

    def schedule(self) -> FiniteSchedule:
        """The converted schedule (cached)."""
        if not self._schedule_cache:
            self._schedule_cache.append(
                convert(self.timed_trace, self.client.sockets)
            )
        return self._schedule_cache[0]

    def response_times(self) -> dict:
        """Per completed job: (arrival time, completion time, response).

        Jobs read but not completed within the horizon are omitted; the
        adequacy pipeline accounts for them via the horizon condition of
        Thm. 5.1.
        """
        arrival_of = job_arrival_times(self.timed_trace, self.arrivals)
        completions = self.timed_trace.completions()
        return {
            job: (arrival_of[job], done, done - arrival_of[job])
            for job, done in completions.items()
        }


def simulate(
    client: RosslClient,
    arrivals: ArrivalSequence,
    wcet: WcetModel,
    horizon: int,
    durations: DurationPolicy | None = None,
    implementation: str = "python",
    fuel: int = 5_000_000,
    engine: str | SchedulerEngine | None = None,
) -> SimulationResult:
    """Run one simulation to the horizon and package the results.

    ``engine`` selects the scheduler backend by registry name
    (``"python"``, ``"interp"``, ``"vm"``, ``"vm-opt"``) or as an
    already-built :class:`~repro.engine.SchedulerEngine` — passing one
    in amortizes parse/typecheck/compile across many runs.  All engines
    produce identical traces for identical inputs; ``implementation`` is
    the historical spelling of the same choice and is used when
    ``engine`` is not given (``"minic"`` aliases ``"interp"``).
    """
    backend = as_engine(engine if engine is not None else implementation, client)
    driver = TimedDriver(client, arrivals, wcet, horizon, durations)
    with obs.span("sim.run", engine=backend.name, horizon=horizon):
        backend.run(driver, driver, fuel=fuel)
    if obs.enabled():
        # Tallied after the run from the recorded trace — the timed
        # driver's emit path stays untouched.
        obs.inc("sim.runs")
        obs.inc("sim.markers", len(driver.trace))
        obs.inc("sim.arrivals_delivered", driver._delivered)
        obs.observe("sim.markers_per_run", len(driver.trace))
        kinds: dict[str, int] = {}
        for marker in driver.trace:
            kind = type(marker).__name__
            kinds[kind] = kinds.get(kind, 0) + 1
        for kind, count in sorted(kinds.items()):
            obs.inc(f"sim.marker.{kind}", count)
    return SimulationResult(
        client=client,
        arrivals=arrivals,
        wcet=wcet,
        timed_trace=driver.timed_trace(),
        implementation=backend.name,
    )

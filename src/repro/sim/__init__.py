"""Discrete-event simulation of Rössl deployments.

The simulator drives either Rössl implementation (the MiniC program
under the instrumented semantics, or the Python reference model) through
a :class:`~repro.sim.simulator.TimedDriver` that stamps every marker
with a timestamp and delivers message arrivals to the socket queues as
simulated time passes.  By construction the produced
:class:`~repro.timing.timed_trace.TimedTrace` is consistent with the
arrival sequence (Def. 2.1) and respects the WCET model — the tests
re-check both with the independent checkers.

:mod:`~repro.sim.workloads` generates arrival sequences conforming to
the tasks' arrival curves.
"""

from repro.sim.simulator import (
    DurationPolicy,
    FractionDurations,
    SimulationResult,
    TimedDriver,
    UniformDurations,
    WcetDurations,
    simulate,
)
from repro.sim.workloads import generate_arrivals

__all__ = [
    "DurationPolicy",
    "FractionDurations",
    "SimulationResult",
    "TimedDriver",
    "UniformDurations",
    "WcetDurations",
    "generate_arrivals",
    "simulate",
]

"""Workload generation: arrival sequences conforming to arrival curves.

The generator is *greedy-conformant*: it proposes random arrival times
per task and keeps a proposal only if the kept set still respects the
task's arrival curve (checked incrementally with the pairwise criterion
of Eq. 2).  This works for any monotone staircase curve, so new curve
shapes need no new generator code.  Generated sequences are re-validated
with the independent checker in tests.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.model.task import Task
from repro.rossl.client import RosslClient
from repro.rta.curves import ArrivalCurve
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.traces.markers import SocketId


def _conformant_times(
    rng: random.Random, alpha: ArrivalCurve, horizon: int, intensity: float
) -> list[int]:
    """Random times in ``[0, horizon)`` that respect ``alpha``.

    Proposes ``intensity · α(horizon)`` candidates and keeps a candidate
    iff every pair constraint with already-kept times still holds.
    """
    budget = alpha(horizon)
    proposals = sorted(
        rng.randrange(horizon) for _ in range(max(0, round(intensity * budget)))
    )
    kept: list[int] = []
    for candidate in proposals:
        trial = sorted(kept + [candidate])
        position = trial.index(candidate)
        ok = True
        for i, earlier in enumerate(trial):
            window = abs(candidate - earlier) + 1
            count = abs(position - i) + 1
            if count > alpha(window):
                ok = False
                break
        if ok:
            kept.append(candidate)
            kept.sort()
    return kept


def _payload_for(rng: random.Random, task: Task, extra_words: int) -> tuple[int, ...]:
    payload = (task.type_tag,) + tuple(
        rng.randrange(100) for _ in range(rng.randrange(extra_words + 1))
    )
    return payload


def generate_arrivals(
    client: RosslClient,
    horizon: int,
    rng: random.Random,
    intensity: float = 1.0,
    socket_of_task: Mapping[str, SocketId] | None = None,
    extra_words: int = 2,
) -> ArrivalSequence:
    """Generate an arrival sequence for every task of ``client``.

    Each task must have an attached arrival curve.  Sockets are chosen
    per arrival uniformly at random unless ``socket_of_task`` pins a
    task to one socket.  ``intensity ≤ 1`` thins the workload; higher
    values saturate the curve.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    arrivals: list[Arrival] = []
    for task in client.tasks:
        alpha = client.tasks.arrival_curve(task.name)
        times = _conformant_times(rng, alpha, horizon, intensity)
        for t in times:
            if socket_of_task is not None and task.name in socket_of_task:
                sock = socket_of_task[task.name]
            else:
                sock = rng.choice(client.sockets)
            arrivals.append(Arrival(t, sock, _payload_for(rng, task, extra_words)))
    return ArrivalSequence(arrivals)


def burst_at(
    client: RosslClient,
    time: int,
    tasks_and_counts: Mapping[str, int],
    sock: SocketId | None = None,
) -> ArrivalSequence:
    """A deterministic burst: ``count`` same-instant arrivals per task.

    Useful for worst-case scenarios (e.g. the pile-up bursts of
    scheduling overhead the introduction warns about).
    """
    target = sock if sock is not None else client.sockets[0]
    arrivals = []
    serial = 0
    for name, count in tasks_and_counts.items():
        task = client.tasks.by_name(name)
        for _ in range(count):
            arrivals.append(Arrival(time, target, (task.type_tag, serial)))
            serial += 1
    return ArrivalSequence(arrivals)

"""Client configuration for Rössl (Def. 3.3).

A client of Rössl provides: the task list ``τ`` (callback types), the
socket list ``input_socks``, the ``msg_to_task`` mapping (here realized
by task type tags in the first payload word, the convention the MiniC
``msg_identify_type`` implements), and ``task_prio`` (stored on the
tasks).  A :class:`RosslClient` bundles these and offers factories for
the runtime model, the protocol automaton, and validity checkers so
that experiments can be written against one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.model.job import Job
from repro.model.message import Message, MsgData
from repro.model.task import Task, TaskSystem
from repro.rossl.runtime import RosslModel
from repro.traces.markers import SocketId
from repro.traces.protocol import SchedulerProtocol


@dataclass(frozen=True)
class RosslClient:
    """A concrete deployment of Rössl: tasks plus sockets.

    Construct with :meth:`make` to get input validation.  ``policy``
    selects the selection rule: ``"npfp"`` (the paper's fixed-priority
    scheduler) or ``"edf"`` (the deadline-driven extension, see
    :mod:`repro.edf`).
    """

    tasks: TaskSystem
    sockets: tuple[SocketId, ...] = field(default=(0,))
    policy: str = "npfp"

    @staticmethod
    def make(
        tasks: Iterable[Task] | TaskSystem,
        sockets: Iterable[SocketId],
        policy: str = "npfp",
    ) -> "RosslClient":
        system = tasks if isinstance(tasks, TaskSystem) else TaskSystem(tasks)
        socks = tuple(sockets)
        if not socks:
            raise ValueError("a client must register at least one socket")
        if len(set(socks)) != len(socks):
            raise ValueError(f"duplicate sockets in {socks}")
        if policy not in ("npfp", "edf"):
            raise ValueError(f"unknown policy {policy!r}")
        return RosslClient(system, socks, policy)

    @property
    def num_sockets(self) -> int:
        return len(self.sockets)

    def model(self) -> RosslModel:
        """A fresh scheduler instance for this client."""
        if self.policy == "edf":
            from repro.edf.policy import EdfRosslModel

            return EdfRosslModel(self.sockets, self.tasks)
        return RosslModel(self.sockets, self.tasks)

    def priority_fn(self):
        """The priority function matching this client's policy (for the
        validity checkers and monitors)."""
        if self.policy == "edf":
            from repro.edf.policy import edf_priority

            return edf_priority
        return self.tasks.priority_of

    def protocol(self) -> SchedulerProtocol:
        """The scheduler-protocol STS for this client's sockets."""
        return SchedulerProtocol(self.sockets)

    def message_for(self, task_name: str, *payload: int) -> Message:
        """A message announcing a job of ``task_name``.

        The first word carries the task's type tag; the rest is free
        payload.
        """
        task = self.tasks.by_name(task_name)
        return Message((task.type_tag, *payload))

    def task_of_job(self, job: Job) -> Task:
        """Resolve a job to its task (``msg_to_task``)."""
        return self.tasks.msg_to_task(job.data)

    def priority_of(self, data: MsgData) -> int:
        return self.tasks.priority_of(data)

"""Pure-Python reference model of the Rössl scheduling loop (Fig. 2).

This module mirrors the C scheduler structure faithfully:

* ``check_sockets_until_empty`` — repeat full polling passes over all
  sockets until one pass where every read fails;
* ``npfp_dequeue`` — pop the highest-priority pending job (FIFO among
  equal priorities);
* ``npfp_dispatch`` — run the job's callback to completion.

Marker emission follows the instrumented Caesium semantics of Fig. 6,
including the trace state ``(idx, id_map)`` that assigns each read
message a fresh unique job id and lets the dispatch marker recover the
job from the raw payload.

The model is trace-equivalent to the MiniC implementation in
:mod:`repro.rossl.source` (enforced by differential tests) and is the
fast path for large simulation campaigns.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.model.job import Job
from repro.model.task import TaskSystem
from repro.rossl.env import Environment, HorizonReached
from repro.traces.trace_state import TraceState
from repro.traces.markers import (
    Marker,
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
    SocketId,
)


class MarkerSink(Protocol):
    """Receives marker events in execution order.

    Sinks may raise :class:`~repro.rossl.env.HorizonReached` from
    :meth:`emit` to stop the loop (e.g. when a simulation horizon is
    reached); ``RosslModel.run`` catches it.
    """

    def emit(self, marker: Marker) -> None: ...  # pragma: no cover - protocol


class TraceRecorder:
    """The simplest sink: collect markers into a list."""

    def __init__(self) -> None:
        self.trace: list[Marker] = []

    def emit(self, marker: Marker) -> None:
        self.trace.append(marker)


class TeeSink:
    """Fan a marker stream out to several sinks (recorder + monitors)."""

    def __init__(self, *sinks: MarkerSink) -> None:
        self._sinks = sinks

    def emit(self, marker: Marker) -> None:
        for sink in self._sinks:
            sink.emit(marker)




class RosslModel:
    """The Rössl scheduling loop, one-to-one with Fig. 2.

    Args:
        sockets: the client's ``input_socks``, polled in this order.
        tasks: the client's task system; supplies job priorities via
            ``msg_to_task`` ∘ ``task_prio``.
    """

    def __init__(self, sockets: Iterable[SocketId], tasks: TaskSystem) -> None:
        self.sockets: tuple[SocketId, ...] = tuple(sockets)
        if not self.sockets:
            raise ValueError("Rössl needs at least one input socket")
        self.tasks = tasks
        self.trace_state = TraceState()
        # The scheduler's internal ready queue, in read order (FIFO among
        # equal priorities, matching the MiniC linked-list insert).
        self._queue: list[Job] = []

    # -- phases of one loop iteration (Fig. 2) ---------------------------

    def _check_sockets_until_empty(self, env: Environment, sink: MarkerSink) -> None:
        """Polling phase: full passes until an all-fail pass (line 3)."""
        while True:
            any_success = False
            for sock in self.sockets:
                sink.emit(MReadS())
                data = env.read(sock)
                if data is None:
                    sink.emit(MReadE(sock, None))
                else:
                    job = self.trace_state.record_read(tuple(data))
                    self._queue.append(job)
                    any_success = True
                    sink.emit(MReadE(sock, job))
            if not any_success:
                return

    def _npfp_dequeue(self) -> Job | None:
        """Selection: pop the highest-priority pending job (line 6)."""
        if not self._queue:
            return None
        best_index = 0
        best_priority = self.tasks.priority_of(self._queue[0].data)
        for i in range(1, len(self._queue)):
            priority = self.tasks.priority_of(self._queue[i].data)
            if priority > best_priority:
                best_index, best_priority = i, priority
        return self._queue.pop(best_index)

    def _iteration(self, env: Environment, sink: MarkerSink) -> None:
        """One iteration of the ``while(1)`` loop of ``fds_run``."""
        self._check_sockets_until_empty(env, sink)
        sink.emit(MSelection())
        job = self._npfp_dequeue()
        if job is None:
            sink.emit(MIdling())
        else:
            resolved = self.trace_state.resolve_dispatch(job.data)
            if resolved != job:  # pragma: no cover - internal consistency
                raise RuntimeError(
                    f"trace state resolved {resolved}, queue held {job}"
                )
            sink.emit(MDispatch(job))
            sink.emit(MExecution(job))
            # The callback body runs here; its effects are external to
            # the scheduler, so the model only accounts for its time
            # (which the timing layer bounds by the task's WCET).
            sink.emit(MCompletion(job))

    # -- drivers ----------------------------------------------------------

    def run(
        self,
        env: Environment,
        sink: MarkerSink,
        max_iterations: int | None = None,
    ) -> None:
        """Run the scheduling loop.

        Runs forever unless ``max_iterations`` is given or the
        environment/sink raises :class:`HorizonReached` (which is
        swallowed: the trace so far is a valid execution prefix).
        """
        iterations = 0
        try:
            while max_iterations is None or iterations < max_iterations:
                self._iteration(env, sink)
                iterations += 1
        except HorizonReached:
            return

    def run_to_trace(
        self, env: Environment, max_iterations: int | None = None
    ) -> list[Marker]:
        """Convenience: run and return the collected marker trace."""
        recorder = TraceRecorder()
        self.run(env, recorder, max_iterations=max_iterations)
        return recorder.trace

    @property
    def queue_snapshot(self) -> tuple[Job, ...]:
        """The pending queue, in read order (for tests and monitors)."""
        return tuple(self._queue)

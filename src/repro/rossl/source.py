"""Rössl in MiniC: the C source of the scheduler (paper Fig. 2).

The scheduler core (``fds_run``, ``check_sockets_until_empty``,
``npfp_enqueue``/``npfp_dequeue``/``npfp_dispatch``) is fixed source
text mirroring the paper's Fig. 2, with the lightblue ghost marker calls
(``read_start``, ``selection_start``, ``idling_start``,
``dispatch_start``, ``execution_start``, ``completion_start``) at the
same program points.  The client part (Def. 3.3) — the task-priority
table realizing ``msg_to_task``/``task_prio``, the socket registration,
and ``main`` — is generated from a :class:`~repro.rossl.client.RosslClient`.

:class:`MiniCRossl` wraps parse → typecheck → run so tests and
simulators can drive the C scheduler exactly like the Python reference
model; the differential tests check the two emit identical traces.  It
is a thin veneer over the ``interp`` engine of :mod:`repro.engine` —
the registry owns all execution paths.
"""

from __future__ import annotations

from repro.lang.parser import parse_program
from repro.lang.typecheck import TypedProgram, typecheck
from repro.rossl.client import RosslClient
from repro.rossl.env import Environment
from repro.rossl.runtime import MarkerSink
from repro.traces.markers import Marker

#: Maximum message length in words (the ``max_length`` of Fig. 6).
DEFAULT_MSG_CAP = 8

_SCHEDULER_CORE = """\
// ---- Rossl: fixed-priority, non-preemptive, interrupt-free scheduler ----
// Structure follows Fig. 2 of the paper; ghost marker calls are the
// lightblue annotations.

struct job {{
    int len;
    int data[{msg_cap}];
    struct job *next;
}};

struct sched {{
    struct job *queue;  // pending jobs, in read (FIFO) order
}};

struct fd_scheduler {{
    struct sched sched;
    int nsocks;
    int socks[{nsocks}];
}};

// The client's msg_identify_type (Def. 3.3): the first payload word is
// the task's type tag.
int msg_identify_type(int *data, int len) {{
    return data[0];
}}

int job_priority(struct job *j) {{
    return task_priority(msg_identify_type(j->data, j->len));
}}

void npfp_enqueue(struct sched *s, struct job *j) {{
    j->next = NULL;
    if (s->queue == NULL) {{
        s->queue = j;
        return;
    }}
    struct job *cur = s->queue;
    while (cur->next != NULL) {{
        cur = cur->next;
    }}
    cur->next = j;
}}

// Pop the highest-priority pending job; FIFO among equal priorities
// (strict > while scanning from the head keeps the earliest).
struct job *npfp_dequeue(struct sched *s) {{
    if (s->queue == NULL) {{
        return NULL;
    }}
    struct job *best = s->queue;
    int bestp = job_priority(best);
    struct job *cur = best->next;
    while (cur != NULL) {{
        int p = job_priority(cur);
        if (p > bestp) {{
            best = cur;
            bestp = p;
        }}
        cur = cur->next;
    }}
    if (best == s->queue) {{
        s->queue = best->next;
    }} else {{
        struct job *prev = s->queue;
        while (prev->next != best) {{
            prev = prev->next;
        }}
        prev->next = best->next;
    }}
    best->next = NULL;
    return best;
}}

// Execute the selected job's callback (the callback body is external;
// the markers delimit the Exec basic action).
void npfp_dispatch(struct sched *s, struct job *j) {{
    execution_start(j->data, j->len);
    completion_start(j->data, j->len);
}}

// One polling pass: read every socket once; returns whether any read
// succeeded.
int check_sockets_one_pass(struct fd_scheduler *fds) {{
    int any = 0;
    int i = 0;
    while (i < fds->nsocks) {{
        read_start();
        struct job *j = malloc(sizeof(struct job));
        int n = read(fds->socks[i], j->data, {msg_cap});
        if (n < 0) {{
            free(j);
        }} else {{
            j->len = n;
            npfp_enqueue(&fds->sched, j);
            any = 1;
        }}
        i = i + 1;
    }}
    return any;
}}

// Polling phase: repeat passes until one where all reads fail.
void check_sockets_until_empty(struct fd_scheduler *fds) {{
    int again = 1;
    while (again) {{
        again = check_sockets_one_pass(fds);
    }}
}}

// The main scheduling loop (Fig. 2).
void fds_run(struct fd_scheduler *fds) {{
    while (1) {{
        check_sockets_until_empty(fds);  // receive jobs on all sockets
        selection_start();
        struct job *j = npfp_dequeue(&fds->sched);  // highest-priority job
        if (!j) {{
            idling_start();  // no job: wait for new input
        }} else {{
            dispatch_start(j->data, j->len);
            npfp_dispatch(&fds->sched, j);  // execute the job
            free(j);  // release the memory
        }}
    }}
}}
"""


def client_source(client: RosslClient, msg_cap: int = DEFAULT_MSG_CAP) -> str:
    """Generate the client part: priority table, socket setup, ``main``."""
    branches = "\n".join(
        f"    if (type == {task.type_tag}) {{ return {task.priority}; }}"
        for task in client.tasks
    )
    priority_table = (
        "// The client's task_prio table (Def. 3.3).\n"
        "int task_priority(int type) {\n"
        f"{branches}\n"
        "    return -1;  // unknown task type\n"
        "}\n"
    )
    socket_setup = "\n".join(
        f"    fds.socks[{index}] = {sock};"
        for index, sock in enumerate(client.sockets)
    )
    main = (
        "void main() {\n"
        "    struct fd_scheduler fds;\n"
        "    fds.sched.queue = NULL;\n"
        f"    fds.nsocks = {client.num_sockets};\n"
        f"{socket_setup}\n"
        "    fds_run(&fds);\n"
        "}\n"
    )
    return priority_table + "\n" + main


def rossl_source(client: RosslClient, msg_cap: int = DEFAULT_MSG_CAP) -> str:
    """The full MiniC translation unit for the client's policy."""
    if client.policy == "edf":
        from repro.edf.policy import edf_source

        return edf_source(client, msg_cap)
    core = _SCHEDULER_CORE.format(msg_cap=msg_cap, nsocks=client.num_sockets)
    return client_source(client, msg_cap) + "\n" + core


def build_rossl(client: RosslClient, msg_cap: int = DEFAULT_MSG_CAP) -> TypedProgram:
    """Parse and typecheck the Rössl program for ``client``."""
    return typecheck(parse_program(rossl_source(client, msg_cap)))


class MiniCRossl:
    """The C scheduler, drivable like the Python reference model.

    ``run`` executes ``main`` under the instrumented semantics until the
    fuel budget runs out or the environment/sink signals the horizon.
    """

    def __init__(self, client: RosslClient, msg_cap: int = DEFAULT_MSG_CAP) -> None:
        # Lazy import: repro.engine imports this module for the source.
        from repro.engine import MiniCInterpEngine

        self._engine = MiniCInterpEngine(client, msg_cap)
        self.client = client
        self.msg_cap = msg_cap
        self.typed = self._engine.typed

    def run(
        self, env: Environment, sink: MarkerSink, fuel: int = 100_000
    ) -> None:
        """Run the scheduler; returns when fuel or the horizon is reached."""
        self._engine.run(env, sink, fuel=fuel)

    def run_to_trace(self, env: Environment, fuel: int = 100_000) -> list[Marker]:
        return self._engine.run_to_trace(env, fuel=fuel)

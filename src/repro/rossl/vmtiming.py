"""VM-timed execution of Rössl: timestamps from the cost semantics.

Where :mod:`repro.sim.simulator` draws basic-action durations from an
assumed WCET model, this module obtains time from *below*: the compiled
Rössl runs on the bytecode VM and every marker is stamped with the VM's
executed-instruction counter.  Time units are instructions; arrivals are
given in the same units.

On top of that, :func:`measure_wcet_model` implements measurement-based
WCET estimation (the paper's "determined experimentally", §2.2, citing
Zolda & Kirner's timed-trace approach): it extracts the maximum observed
duration of every basic-action interval from a set of stress traces and
returns a :class:`~repro.timing.wcet.WcetModel` (plus per-task execution
maxima), optionally inflated by a safety margin.  The closed loop —
derive WCETs from the cost semantics, run the RTA, validate the bounds
against fresh VM-timed executions — is exercised in
``tests/test_vmtiming.py`` and experiment E13.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.lang.vm import VM
from repro.model.message import MsgData
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.env import QueueEnvironment
from repro.timing.arrivals import ArrivalSequence
from repro.timing.timed_trace import TimedTrace
from repro.timing.wcet import WcetModel
from repro.traces.markers import (
    Marker,
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
    SocketId,
)


class VmTimedDriver:
    """Environment + sink for a VM run: the clock is ``vm.executed``."""

    def __init__(self, client: RosslClient, arrivals: ArrivalSequence) -> None:
        self.client = client
        self._queues = QueueEnvironment(client.sockets)
        self._pending = list(arrivals.restricted_to(client.sockets))
        self._delivered = 0
        self.trace: list[Marker] = []
        self.timestamps: list[int] = []
        self.vm: VM | None = None

    def attach(self, vm: VM) -> None:
        self.vm = vm

    @property
    def clock(self) -> int:
        assert self.vm is not None, "driver not attached to a VM"
        return self.vm.executed

    def read(self, sock: SocketId) -> MsgData | None:
        while (
            self._delivered < len(self._pending)
            and self._pending[self._delivered].time < self.clock
        ):
            arrival = self._pending[self._delivered]
            self._queues.inject(arrival.sock, arrival.data)
            self._delivered += 1
        return self._queues.read(sock)

    def emit(self, marker: Marker) -> None:
        self.trace.append(marker)
        self.timestamps.append(self.clock)

    def timed_trace(self, horizon: int) -> TimedTrace:
        return TimedTrace.make(self.trace, self.timestamps, horizon)


@dataclass(frozen=True)
class VmRun:
    """One VM-timed execution of the compiled Rössl."""

    client: RosslClient
    arrivals: ArrivalSequence
    timed_trace: TimedTrace
    instructions: int


def simulate_vm(
    client: RosslClient,
    arrivals: ArrivalSequence,
    instruction_budget: int,
    optimize: bool = False,
    engine=None,
) -> VmRun:
    """Run the compiled Rössl for ``instruction_budget`` instructions.

    ``optimize=True`` runs the peephole-optimized build — same traces,
    fewer instructions per basic action, hence smaller measured WCETs
    (like measuring on a higher optimization level).  ``engine`` may name
    any registry engine with the ``vm_timing`` capability (``"vm"``,
    ``"vm-opt"``, ``"codegen"``) or be a pre-built one, amortizing
    compilation across many measurement runs.
    """
    from repro.engine import as_engine

    backend = as_engine(
        engine if engine is not None else ("vm-opt" if optimize else "vm"),
        client,
    )
    if not backend.capabilities.vm_timing:
        raise ValueError(
            f"engine {backend.name!r} has no instruction counter; "
            "VM timing needs the 'vm', 'vm-opt', or 'codegen' engine"
        )
    driver = VmTimedDriver(client, arrivals)
    stats = backend.run(driver, driver, fuel=instruction_budget)
    return VmRun(
        client=client,
        arrivals=arrivals,
        timed_trace=driver.timed_trace(horizon=instruction_budget + 1),
        instructions=stats.instructions,
    )


@dataclass(frozen=True)
class MeasuredWcets:
    """Measurement-derived WCETs: the basic-action model plus per-task
    execution maxima (the measured ``C_i``)."""

    wcet: WcetModel
    exec_maxima: dict[str, int]

    def tasks_with_measured_wcets(self, tasks: TaskSystem) -> TaskSystem:
        """A copy of the task system whose ``C_i`` are the measured
        execution maxima (tasks never observed keep their declared C)."""
        replaced = [
            Task(
                name=t.name,
                priority=t.priority,
                wcet=self.exec_maxima.get(t.name, t.wcet),
                type_tag=t.type_tag,
            )
            for t in tasks
        ]
        curves = {
            t.name: tasks.arrival_curve(t.name) for t in tasks
        } if tasks.has_curves else None
        return TaskSystem(replaced, curves)


def measure_wcet_model(
    runs: list[VmRun],
    margin: float = 1.0,
) -> MeasuredWcets:
    """Extract per-basic-action maxima from timed traces (Zolda-Kirner
    style measurement-based WCET estimation).

    ``margin ≥ 1`` inflates every bound to hedge against unobserved
    paths — measurement-based estimation is only as good as the stress
    coverage, which is precisely why the paper prefers to treat WCETs as
    assumed inputs.
    """
    if margin < 1.0:
        raise ValueError("safety margin must be at least 1")
    maxima = {
        "failed_read": 2, "success_read": 2, "selection": 1,
        "dispatch": 1, "completion": 1, "idling": 1,
    }
    exec_maxima: dict[str, int] = {}
    for run in runs:
        trace, ts = run.timed_trace.trace, run.timed_trace.ts
        n = len(trace)
        for i, marker in enumerate(trace):
            if isinstance(marker, MReadS):
                if i + 2 >= n:
                    continue
                end = trace[i + 1]
                assert isinstance(end, MReadE)
                duration = ts[i + 2] - ts[i]
                key = "failed_read" if end.job is None else "success_read"
                maxima[key] = max(maxima[key], duration)
                continue
            if i + 1 >= n:
                continue
            duration = ts[i + 1] - ts[i]
            if isinstance(marker, MSelection):
                maxima["selection"] = max(maxima["selection"], duration)
            elif isinstance(marker, MDispatch):
                maxima["dispatch"] = max(maxima["dispatch"], duration)
            elif isinstance(marker, MExecution):
                name = run.client.tasks.msg_to_task(marker.job.data).name
                exec_maxima[name] = max(exec_maxima.get(name, 1), duration)
            elif isinstance(marker, MCompletion):
                maxima["completion"] = max(maxima["completion"], duration)
            elif isinstance(marker, MIdling):
                maxima["idling"] = max(maxima["idling"], duration)

    def pad(value: int) -> int:
        return ceil(value * margin)

    wcet = WcetModel(
        failed_read=max(2, pad(maxima["failed_read"])),
        success_read=max(2, pad(maxima["success_read"])),
        selection=pad(maxima["selection"]),
        dispatch=pad(maxima["dispatch"]),
        completion=pad(maxima["completion"]),
        idling=pad(maxima["idling"]),
    )
    return MeasuredWcets(
        wcet=wcet,
        exec_maxima={name: pad(v) for name, v in exec_maxima.items()},
    )

"""Socket environments: the axiomatized ``read`` system call.

The paper models ``read`` only for non-blocking, message-based I/O on
datagram sockets (footnote 4): a read either returns one whole message
or fails immediately when no message is queued.  An
:class:`Environment` answers read requests; concrete environments:

* :class:`QueueEnvironment` — per-socket FIFO queues with explicit
  injection; used by simulators, which inject arrivals as simulated
  time passes;
* :class:`ScriptedEnvironment` — a predetermined outcome per read call;
  used for deterministic replay (differential testing) and by the
  bounded model checker, which enumerates all outcome scripts.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Protocol, Sequence

from repro.model.message import MsgData
from repro.traces.markers import SocketId


class HorizonReached(Exception):
    """Raised by a driver to stop the (infinite) scheduling loop.

    ``RosslModel.run`` treats this as a clean end of observation: the
    trace collected so far is a prefix of the infinite execution.
    """


class Environment(Protocol):
    """Answers non-blocking datagram reads."""

    def read(self, sock: SocketId) -> MsgData | None:
        """Return the next queued message on ``sock`` or ``None``."""
        ...  # pragma: no cover - protocol


class QueueEnvironment:
    """Per-socket FIFO message queues with explicit injection."""

    def __init__(self, sockets: Iterable[SocketId]) -> None:
        self._queues: dict[SocketId, deque[MsgData]] = {
            sock: deque() for sock in sockets
        }
        if not self._queues:
            raise ValueError("environment needs at least one socket")

    @property
    def sockets(self) -> tuple[SocketId, ...]:
        return tuple(self._queues)

    def inject(self, sock: SocketId, data: MsgData) -> None:
        """Enqueue a message on ``sock`` (a job arrival)."""
        if sock not in self._queues:
            raise KeyError(f"unknown socket {sock}")
        self._queues[sock].append(tuple(data))

    def read(self, sock: SocketId) -> MsgData | None:
        queue = self._queues[sock]
        if not queue:
            return None
        return queue.popleft()

    def queued(self, sock: SocketId) -> int:
        """Number of messages currently queued on ``sock``."""
        return len(self._queues[sock])

    @property
    def total_queued(self) -> int:
        return sum(len(q) for q in self._queues.values())


class ScriptedEnvironment:
    """Replays a fixed sequence of read outcomes.

    The ``script`` lists the outcome of each successive read call,
    regardless of socket (the caller controls the socket order through
    the scheduler's round-robin polling).  When the script is exhausted
    the environment raises :class:`HorizonReached`, ending the run —
    this makes scripts natural inputs for bounded exploration.
    """

    def __init__(self, script: Sequence[MsgData | None]) -> None:
        self._script: tuple[MsgData | None, ...] = tuple(
            None if item is None else tuple(item) for item in script
        )
        self._pos = 0

    @property
    def position(self) -> int:
        """Number of read calls answered so far."""
        return self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._script)

    def read(self, sock: SocketId) -> MsgData | None:
        if self._pos >= len(self._script):
            raise HorizonReached(f"script exhausted after {self._pos} reads")
        outcome = self._script[self._pos]
        self._pos += 1
        return outcome

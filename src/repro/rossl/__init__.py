"""Rössl: a fixed-priority, non-preemptive, interrupt-free scheduler.

Rössl (paper section 2.1) is the case study of RefinedProsa: it accepts
jobs arriving as messages over datagram sockets and dispatches a
registered callback per job, polling in a loop — no timer interrupts.
This package provides:

* :mod:`repro.rossl.env` — the socket environment (the paper's
  axiomatized non-blocking ``read``, footnote 4);
* :mod:`repro.rossl.runtime` — a pure-Python reference model of the
  scheduling loop of Fig. 2, emitting the marker-function trace;
* :mod:`repro.rossl.source` — the same scheduler written in the MiniC
  C subset and executed under the instrumented semantics of
  :mod:`repro.lang` (the Caesium analog);
* :mod:`repro.rossl.client` — client configuration per Def. 3.3.

The reference model and the MiniC implementation are checked
trace-equivalent by the differential tests.
"""

from repro.rossl.client import RosslClient
from repro.rossl.env import (
    Environment,
    HorizonReached,
    QueueEnvironment,
    ScriptedEnvironment,
)
from repro.rossl.runtime import MarkerSink, RosslModel, TraceRecorder, TraceState

__all__ = [
    "Environment",
    "HorizonReached",
    "MarkerSink",
    "QueueEnvironment",
    "RosslClient",
    "RosslModel",
    "ScriptedEnvironment",
    "TraceRecorder",
    "TraceState",
]
